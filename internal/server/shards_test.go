package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/layout"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// fleetDS builds a fresh 6-system, 2-group dataset (4 nodes each) with
// per-system failure histories. Every caller gets its own instance —
// store.New takes ownership of the dataset it is given, so a server and
// its twin must never share one.
func fleetDS() *trace.Dataset {
	var systems []trace.SystemInfo
	var fails []trace.Failure
	layouts := map[int]*layout.Layout{}
	for id := 1; id <= 6; id++ {
		group := trace.Group1
		if id > 3 {
			group = trace.Group2
		}
		systems = append(systems, trace.SystemInfo{
			ID: id, Group: group, Nodes: 4, ProcsPerNode: 4,
			Period: trace.Interval{Start: day(0), End: day(98)},
		})
		lay := layout.New(id)
		for n := 0; n < 4; n++ {
			_ = lay.SetPlace(n, layout.Place{Rack: n / 2, Position: n%2 + 1})
		}
		layouts[id] = lay
		// A history that gives every system real lift-table mass, offset
		// per system so the shards are not trivially symmetric.
		for d := 5 + id; d < 85; d += 10 {
			fails = append(fails,
				trace.Failure{System: id, Node: 0, Time: day(d, 12), Category: trace.Hardware, HW: trace.CPU},
				trace.Failure{System: id, Node: 0, Time: day(d, 18), Category: trace.Software, SW: trace.OS},
			)
		}
		fails = append(fails, trace.Failure{System: id, Node: 2, Time: day(40+id, 12), Category: trace.Network})
	}
	ds := &trace.Dataset{Systems: systems, Failures: fails, Layouts: layouts}
	ds.Sort()
	return ds
}

// newShardedServer builds a 3-shard server over a fresh fleetDS. With a
// non-empty walDir each shard journals under walDir/shard-NNN and gets a
// warm standby tailing that directory.
func newShardedServer(t *testing.T, walDir string) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Dataset: fleetDS(),
		Window:  trace.Day,
		Now:     func() time.Time { return day(100) },
		Shards:  3,
		Logf:    func(string, ...any) {},
	}
	if walDir != "" {
		cfg.ShardWAL = wal.Options{Dir: walDir}
		cfg.Standby = true
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getRaw fetches a URL and returns the response plus its full body.
func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// feedFleet posts one batch with two events per system and returns the
// request body used, so a twin can be fed identically.
func feedFleet(t *testing.T, url string) {
	t.Helper()
	var evs []string
	for id := 1; id <= 6; id++ {
		evs = append(evs,
			fmt.Sprintf(`{"system":%d,"node":1,"category":"HW","hw":"CPU"}`, id),
			fmt.Sprintf(`{"system":%d,"node":3,"category":"SW","sw":"OS"}`, id),
		)
	}
	resp, body := postEvents(t, url, `{"events":[`+strings.Join(evs, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST events = %d; body: %s", resp.StatusCode, body)
	}
}

// metricValue extracts one sample value line from Prometheus text output.
func metricValue(t *testing.T, metrics []byte, sample string) (string, bool) {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` (.+)$`)
	m := re.FindSubmatch(metrics)
	if m == nil {
		return "", false
	}
	return string(m[1]), true
}

// TestKillOneShardPartialThenPromotionIdentity is the failover acceptance
// test: under shard death, cross-system queries keep answering with
// X-Partial: true and exactly the surviving shards' results; after the warm
// standby is promoted, /v1/snapshot and pinned /v1/risk/top are
// byte-identical to an uninterrupted twin that never lost a shard, and the
// replication-lag metric is back to zero.
func TestKillOneShardPartialThenPromotionIdentity(t *testing.T) {
	srv, ts := newShardedServer(t, t.TempDir())
	twinSrv, twin := newShardedServer(t, t.TempDir())
	if srv.ShardCount() != 3 || twinSrv.ShardCount() != 3 {
		t.Fatalf("shard counts = %d, %d, want 3", srv.ShardCount(), twinSrv.ShardCount())
	}

	// Identical feeds; then make the appends durable and drain both fleets'
	// standbys so every replica is warm.
	feedFleet(t, ts.URL)
	feedFleet(t, twin.URL)
	srv.fabric.syncAll()
	twinSrv.fabric.syncAll()

	// Replication lag is visible before catchup, and zero after.
	lagged := fetchMetrics(t, ts)
	if v, ok := metricValue(t, lagged, `hpcserve_wal_replication_lag_records{shard="0"}`); !ok || v == "0" {
		t.Fatalf("pre-catchup lag for shard 0 = %q, %v, want nonzero", v, ok)
	}
	srv.CatchupStandbys()
	twinSrv.CatchupStandbys()
	caught := fetchMetrics(t, ts)
	for i := 0; i < 3; i++ {
		sample := fmt.Sprintf(`hpcserve_wal_replication_lag_records{shard="%d"}`, i)
		if v, ok := metricValue(t, caught, sample); !ok || v != "0" {
			t.Fatalf("post-catchup %s = %q, %v, want 0", sample, v, ok)
		}
	}

	at := "at=" + day(100).UTC().Format(time.RFC3339)
	pinned := at + "&k=24"

	// Healthy baseline: the fleets answer identically, not partially.
	resp, before := getRaw(t, ts.URL+"/v1/risk/top?"+pinned)
	if resp.Header.Get("X-Partial") != "" {
		t.Fatal("healthy fleet answered partially")
	}
	_, twinBefore := getRaw(t, twin.URL+"/v1/risk/top?"+pinned)
	if !bytes.Equal(before, twinBefore) {
		t.Fatalf("healthy fleets diverge:\n%s\n%s", before, twinBefore)
	}

	// Kill the shard owning system 1.
	victim := srv.fabric.owner[1]
	if err := srv.KillShard(victim); err != nil {
		t.Fatal(err)
	}

	// Per-system queries to the dead shard's systems fail loudly...
	resp, _ = getRaw(t, ts.URL+"/v1/risk/top?system=1&k=4")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard per-system query = %d, want 503", resp.StatusCode)
	}
	// ...while cross-system queries answer partially: X-Partial set, the
	// version vector names the dead shard, and every surviving system's
	// scores byte-match the twin's (queried per system on both sides).
	resp, _ = getRaw(t, ts.URL+"/v1/risk/top?"+pinned)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
		t.Fatalf("partial top = %d, X-Partial %q", resp.StatusCode, resp.Header.Get("X-Partial"))
	}
	if vv := resp.Header.Get("X-Shard-Versions"); !strings.Contains(vv, fmt.Sprintf("%d:down", victim)) {
		t.Fatalf("X-Shard-Versions = %q, want shard %d down", vv, victim)
	}
	for id := 1; id <= 6; id++ {
		if srv.fabric.owner[id] == victim {
			continue
		}
		q := fmt.Sprintf("/v1/risk/top?system=%d&k=4&"+at, id)
		sresp, got := getRaw(t, ts.URL+q)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("surviving system %d = %d", id, sresp.StatusCode)
		}
		_, want := getRaw(t, twin.URL+q)
		if !bytes.Equal(got, want) {
			t.Fatalf("surviving system %d diverged from twin:\n%s\n%s", id, got, want)
		}
	}
	// The snapshot endpoint follows the same partial contract.
	resp, _ = getRaw(t, ts.URL+"/v1/snapshot")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
		t.Fatalf("partial snapshot = %d, X-Partial %q", resp.StatusCode, resp.Header.Get("X-Partial"))
	}
	// /readyz reports the degraded fleet; /healthz stays alive.
	resp, _ = getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", resp.StatusCode)
	}
	resp, _ = getRaw(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz = %d, want 200", resp.StatusCode)
	}

	// Promote the warm standby and the fleet fully recovers: X-Partial
	// clears, and both pinned risk and the canonical engine snapshot are
	// byte-identical to the uninterrupted twin.
	if err := srv.PromoteShard(victim); err != nil {
		t.Fatalf("PromoteShard: %v", err)
	}
	resp, after := getRaw(t, ts.URL+"/v1/risk/top?"+pinned)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "" {
		t.Fatalf("post-promotion top = %d, X-Partial %q", resp.StatusCode, resp.Header.Get("X-Partial"))
	}
	_, twinAfter := getRaw(t, twin.URL+"/v1/risk/top?"+pinned)
	if !bytes.Equal(after, twinAfter) {
		t.Fatalf("promoted fleet diverged on pinned top:\n%s\n%s", after, twinAfter)
	}
	_, snapA := getRaw(t, ts.URL+"/v1/snapshot")
	_, snapB := getRaw(t, twin.URL+"/v1/snapshot")
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("promoted fleet snapshot diverged:\n%s\n%s", snapA, snapB)
	}
	resp, _ = getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered readyz = %d, want 200", resp.StatusCode)
	}

	// The promoted shard serves per-system queries again, identically.
	q := "/v1/risk/top?system=1&k=4&" + at
	_, got := getRaw(t, ts.URL+q)
	_, want := getRaw(t, twin.URL+q)
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted shard diverged on its own system:\n%s\n%s", got, want)
	}

	// Failover is visible in the metrics, and lag is back to zero (the
	// promoted shard has no standby; the survivors are drained).
	m := fetchMetrics(t, ts)
	if v, ok := metricValue(t, m, fmt.Sprintf(`hpcserve_shard_failovers_total{shard="%d"}`, victim)); !ok || v != "1" {
		t.Fatalf("failovers metric = %q, %v, want 1", v, ok)
	}
	for i := 0; i < 3; i++ {
		sample := fmt.Sprintf(`hpcserve_wal_replication_lag_records{shard="%d"}`, i)
		if v, ok := metricValue(t, m, sample); !ok || v != "0" {
			t.Fatalf("post-failover %s = %q, %v, want 0", sample, v, ok)
		}
		healthy := fmt.Sprintf(`hpcserve_shard_healthy{shard="%d",state="ready"}`, i)
		if v, ok := metricValue(t, m, healthy); !ok || v != "1" {
			t.Fatalf("%s = %q, %v, want 1", healthy, v, ok)
		}
	}
	if v, ok := metricValue(t, m, "hpcserve_partial_responses_total"); !ok || v == "0" {
		t.Fatalf("partial_responses_total = %q, %v, want nonzero", v, ok)
	}
}

// TestCondProbScatterPartialAndMergeIdentity pins the scatter-gather
// condprob path: healthy answers are byte-identical to an unsharded server
// over the same dataset, and with a shard down the group query still
// answers, flagged partial.
func TestCondProbScatterPartialAndMergeIdentity(t *testing.T) {
	srv, ts := newShardedServer(t, "")
	single, err := New(Config{
		Dataset: fleetDS(),
		Window:  trace.Day,
		Now:     func() time.Time { return day(100) },
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	queries := []string{
		"/v1/condprob?anchor=HW&target=SW&window=24h&scope=node",
		"/v1/condprob?anchor=HW&window=24h&scope=system&group=1",
		"/v1/condprob?window=168h&scope=rack&group=2",
	}
	for _, q := range queries {
		resp, got := getRaw(t, ts.URL+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", q, resp.StatusCode)
		}
		if resp.Header.Get("X-Partial") != "" {
			t.Fatalf("%s partial on a healthy fleet", q)
		}
		_, want := getRaw(t, sts.URL+q)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: sharded != unsharded:\n%s\n%s", q, got, want)
		}
	}

	// Kill one shard: fleet-scope condprob still answers, flagged partial.
	if err := srv.KillShard(srv.fabric.owner[2]); err != nil {
		t.Fatal(err)
	}
	resp, _ := getRaw(t, ts.URL+queries[0])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
		t.Fatalf("degraded condprob = %d, X-Partial %q", resp.StatusCode, resp.Header.Get("X-Partial"))
	}
}

// TestSupervisorAutoFailover drives the supervision loop deterministically:
// a stalled shard misses its heartbeat deadline, the supervisor expires it,
// and the next tick promotes the warm standby without operator action.
func TestSupervisorAutoFailover(t *testing.T) {
	clock := &fakeClock{t: day(100)}
	cfg := Config{
		Dataset:           fleetDS(),
		Window:            trace.Day,
		Now:               clock.Now,
		Shards:            2,
		ShardWAL:          wal.Options{Dir: t.TempDir()},
		Standby:           true,
		ShardDeadline:     20 * time.Millisecond,
		HeartbeatDeadline: time.Second,
		Logf:              func(string, ...any) {},
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	feedFleet(t, ts.URL)
	srv.fabric.syncAll()
	srv.CatchupStandbys()

	// A healthy tick beats both shards; nothing changes.
	srv.SuperviseTick(context.Background())
	if _, rows := srv.fabric.status(); rows[0].State != "ready" || rows[1].State != "ready" {
		t.Fatalf("healthy tick changed states: %+v", rows)
	}

	// Shard 0 stalls far past the per-call deadline: its heartbeat fails,
	// and once the fake clock passes the heartbeat deadline the next tick
	// expires it and immediately promotes the warm standby.
	if err := srv.StallShard(0, time.Minute); err != nil {
		t.Fatal(err)
	}
	srv.SuperviseTick(context.Background()) // heartbeat fails; no beat recorded
	clock.Advance(2 * time.Second)
	srv.SuperviseTick(context.Background()) // expire + auto-promote
	ready, rows := srv.fabric.status()
	if rows[0].State != "ready" {
		t.Fatalf("shard 0 after auto-failover = %+v", rows[0])
	}
	if !ready {
		t.Fatalf("fleet not ready after auto-failover: %+v", rows)
	}
	if got := srv.fabric.shards[0].failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	// The promoted shard serves (the stall died with the old leader).
	resp, _ := getRaw(t, ts.URL+"/v1/risk/top?k=24")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "" {
		t.Fatalf("post-auto-failover top = %d, X-Partial %q", resp.StatusCode, resp.Header.Get("X-Partial"))
	}
}

// TestReadyzWarmup pins satellite readiness semantics for the standby
// warm-up phase: a sharded-with-standby server is not-ready until the first
// full catchup, while /healthz answers 200 throughout.
func TestReadyzWarmup(t *testing.T) {
	srv, ts := newShardedServer(t, t.TempDir())
	resp, body := getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming readyz = %d, want 503; body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"standby": "warming"`)) {
		t.Fatalf("warming readyz body = %s", body)
	}
	resp, _ = getRaw(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming healthz = %d, want 200", resp.StatusCode)
	}
	srv.CatchupStandbys()
	resp, body = getRaw(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status": "ready"`)) {
		t.Fatalf("warm readyz = %d, body %s", resp.StatusCode, body)
	}
	// An unsharded, standby-less server is ready from boot — the legacy
	// contract is unchanged.
	plain, err := New(Config{
		Dataset: fleetDS(),
		Window:  trace.Day,
		Now:     func() time.Time { return day(100) },
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	resp, _ = getRaw(t, pts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy readyz = %d, want 200", resp.StatusCode)
	}
}
