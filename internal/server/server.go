// Package server is the HTTP serving layer over the toolkit: a JSON API
// exposing the online risk engine (internal/risk) and the offline
// conditional-probability analysis (internal/analysis) of one in-memory
// dataset.
//
// Endpoints:
//
//	GET  /v1/risk/{node}?system=S     one node's live follow-up-failure risk
//	GET  /v1/risk/top?k=K&system=S    the K highest-risk nodes right now
//	GET  /v1/condprob?anchor=&target=&window=&scope=&group=
//	                                  cached conditional-vs-baseline query
//	GET  /v1/correlations?window=&scope=&system=&min_support=&min_confidence=
//	                                  mined correlation-rule graph (internal/correlate)
//	GET  /v1/anomalies?system=&k=     vicinity anomaly ranking
//	GET  /v1/snapshot                 canonical engine state (recovery checks)
//	POST /v1/events                   feed failure events into the engine
//	GET  /healthz                     liveness
//	GET  /metrics                     Prometheus text metrics
//
// The server answers every request from an immutable snapshot of a
// versioned dataset store (internal/store): handlers pin one snapshot, so a
// response is internally consistent even while POST /v1/events advances the
// dataset underneath. Responses carry the snapshot's version in an
// X-Dataset-Version header, and conditional-probability cache keys embed it,
// so a cached answer can never leak across dataset versions.
//
// Conditional-probability responses are cached on the canonicalized query
// and deduplicated singleflight-style: concurrent identical queries compute
// once. Every request runs under a timeout and per-route admission control
// (overload is shed with 429 + Retry-After); a circuit breaker degrades
// condprob to cached answers when compute keeps failing. With a
// risk.Journal configured, POST /v1/events is write-ahead logged so acked
// events survive a crash, and X-Idempotency-Key makes retries safe. Serve
// shuts down gracefully when its context is cancelled, joining in-flight
// handlers before tearing down shared state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/checkpoint"
	"github.com/hpcfail/hpcfail/internal/iofault"
	"github.com/hpcfail/hpcfail/internal/registry"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/stats"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// Config assembles a Server.
type Config struct {
	// Dataset is the in-memory dataset the server answers from; the server
	// wraps it in a private versioned store. Required unless Store is set.
	Dataset *trace.Dataset
	// Store, when set, is the versioned dataset store the server resolves
	// requests against, and Dataset is ignored. Pass the same store the
	// journal applies events to so batch history and live ingest share one
	// canonical event log.
	Store *store.Store
	// FrozenDataset stops POST /v1/events from advancing the server's own
	// store: accepted events still feed the risk engine, but condprob
	// answers stay pinned to the boot dataset. A journal that owns the
	// store keeps advancing it regardless.
	FrozenDataset bool
	// Window is the risk engine's sliding window (and the lift table's
	// look-ahead). Defaults to one day. Ignored when Engine is set.
	Window time.Duration
	// Engine overrides the engine built from Dataset/Window — pass one to
	// reuse a pre-built lift table.
	Engine *risk.Engine
	// Journal, when set, makes ingestion durable: POST /v1/events appends
	// to its write-ahead log before the engine observes anything, and the
	// serve loop drives its fsync/snapshot maintenance. The journal must
	// wrap the same engine the server scores with.
	Journal *risk.Journal
	// CorrelationWindows are the time windows the per-shard correlation-rule
	// miners maintain incrementally and /v1/correlations can answer for.
	// Empty means correlate.DefaultWindows (day and week).
	CorrelationWindows []time.Duration
	// RequestTimeout bounds each request's computation; defaults to 10s.
	RequestTimeout time.Duration
	// CacheSize bounds the condprob result cache; defaults to 256 entries.
	CacheSize int
	// Limits overrides per-route admission limits; routes not listed keep
	// their defaults (see defaultLimits). A zero-Concurrency entry makes
	// that route unlimited.
	Limits map[string]RouteLimit
	// BreakerThreshold is how many consecutive condprob compute failures
	// open the circuit; defaults to 5.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before one trial
	// compute probes recovery; defaults to 10s.
	BreakerCooldown time.Duration
	// Middleware, when set, wraps the routed handler — the chaos injector
	// (internal/faultinject) plugs in here.
	Middleware func(http.Handler) http.Handler
	// Shards, when >= 1, splits the fleet into that many supervised fault
	// domains by consistent hashing on system ID: per-shard stores, engines,
	// WALs and breakers, scatter-gather for cross-system queries, and
	// partial results when a shard is down. Requires Dataset; Store, Engine
	// and Journal must be nil (sharded mode builds its own). Counts above
	// the system count are clamped. Zero keeps the legacy single-store
	// server.
	Shards int
	// ShardWAL configures per-shard durability in sharded mode: Dir is the
	// root under which shard i keeps its WAL at shard-NNN/; the remaining
	// options pass through to wal.Open. An empty Dir disables durability
	// (and standbys).
	ShardWAL wal.Options
	// Standby, in sharded mode with ShardWAL.Dir set, gives every shard a
	// warm standby that tails the leader's WAL and is promoted automatically
	// when the shard dies.
	Standby bool
	// SnapshotPolicy spaces periodic per-shard engine snapshots in sharded
	// mode (see risk.JournalConfig.SnapshotPolicy).
	SnapshotPolicy checkpoint.Policy
	// ShardDeadline bounds one shard's slice of a scatter-gather query;
	// defaults to DefaultShardDeadline.
	ShardDeadline time.Duration
	// HeartbeatInterval spaces supervision ticks; defaults to
	// DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// HeartbeatDeadline expires a Ready shard that has not heartbeaten;
	// defaults to store.DefaultHeartbeatDeadline.
	HeartbeatDeadline time.Duration
	// SpaceProbeInterval spaces the disk-space probes that let a shard leave
	// read-only mode after its WAL filled (see DESIGN.md §5i). Zero means
	// the 5s default; negative probes on every gated write attempt (tests
	// use that for determinism).
	SpaceProbeInterval time.Duration
	// TenantRoot, when set, is the directory the dataset registry keeps
	// named tenants under: <TenantRoot>/<name>/tenant.json next to that
	// tenant's WAL tree at <TenantRoot>/<name>/shard-NNN/. Tenants found
	// there are reopened at boot. Empty keeps named tenants memory-only
	// (they still work, but do not survive a restart).
	TenantRoot string
	// TenantWAL is the per-shard durability template for named tenants:
	// every option passes through to wal.Open with Dir rewritten to the
	// tenant's own tree. Ignored when TenantRoot is empty.
	TenantWAL wal.Options
	// AdminToken, when set, gates the dataset-management API (POST/DELETE
	// /v1/datasets) and, via X-Admin-Token, bypasses per-dataset tokens.
	// Empty leaves the admin API open.
	AdminToken string
	// OnStart, when set, is invoked in its own goroutine once ServeListener
	// is accepting — the hook the shard-chaos injector uses to reach the
	// running server.
	OnStart func(ctx context.Context, s *Server)
	// Now supplies the clock; defaults to time.Now. Tests inject a fake.
	Now func() time.Time
	// Logf, when set, receives serve-lifecycle log lines.
	Logf func(format string, args ...any)
}

// defaultLimits are the per-route admission bounds: the condprob compute
// path is the expensive one and gets the tightest concurrency; reads and
// ingest are cheap and get generous bounds that still stop a stampede.
func defaultLimits() map[string]RouteLimit {
	return map[string]RouteLimit{
		"/v1/condprob":     {Concurrency: 2 * runtime.GOMAXPROCS(0), Queue: 64},
		"/v1/correlations": {Concurrency: 2 * runtime.GOMAXPROCS(0), Queue: 64},
		"/v1/anomalies":    {Concurrency: 2 * runtime.GOMAXPROCS(0), Queue: 64},
		"/v1/risk/top":     {Concurrency: 32, Queue: 128},
		"/v1/risk/{node}":  {Concurrency: 32, Queue: 128},
		"/v1/events":       {Concurrency: 16, Queue: 128},
		"/v1/snapshot":     {Concurrency: 2, Queue: 8},
	}
}

// Server answers the API over one dataset, split into one or more
// supervised shards. Build with New; the zero value is not usable.
type Server struct {
	fabric  *fabric
	frozen  bool
	cache   *resultCache
	metrics *metrics
	idem    *idemCache
	limits  map[string]*limiter
	// breaker aliases shard 0's circuit breaker — the whole breaker in the
	// single-shard server, one of n in sharded mode.
	breaker *breaker
	wrap    func(http.Handler) http.Handler
	timeout time.Duration
	now     func() time.Time
	logf    func(format string, args ...any)
	// inflight tracks running request handlers so shutdown can join them
	// before tearing down shared state.
	inflight sync.WaitGroup
	// base is the lifecycle context detached computations run under, so a
	// singleflight leader hanging up does not fail its followers.
	base context.Context

	// name is the dataset this server answers for: defaultTenantName on the
	// root server, the tenant's canonical name on registry-built children.
	name string
	// quota is the tenant's resource quota (zero on the root server).
	quota registry.Quota
	// reg, tmpl and adminToken exist only on the root server: the named
	// tenant registry, the Config template children derive from, and the
	// operator token gating the dataset-management API.
	reg        *registry.Registry
	tmpl       Config
	adminToken string
	// routesOnce/routeTab lazily build the per-tenant route table shared by
	// the root mux and the /v1/d/{dataset} dispatcher.
	routesOnce sync.Once
	routeTab   map[string]http.Handler
}

// New builds the root server over the config's store (or a private store
// over its dataset) and wires up the named-dataset registry: tenants
// persisted under cfg.TenantRoot are reopened, and new ones can be created
// through the dataset API. The root server itself is the "default" tenant.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	s.tmpl = cfg
	s.adminToken = cfg.AdminToken
	reg, err := registry.New(registry.Config{
		Root:  cfg.TenantRoot,
		Build: s.buildTenantResource,
		Logf:  s.logf,
	})
	if err != nil {
		return nil, err
	}
	s.reg = reg
	if err := reg.OpenAll(); err != nil {
		reg.CloseAll()
		return nil, fmt.Errorf("server: reopening datasets: %w", err)
	}
	return s, nil
}

// newServer builds one dataset's serving stack — store, risk engine (lift
// table, sliding windows), shard fabric, caches, admission — without any
// registry wiring. With cfg.Shards set, the dataset is partitioned into
// supervised fault domains — see Config.Shards. It is the constructor both
// for the root server (via New) and for registry-built tenant children.
func newServer(cfg Config) (*Server, error) {
	w := cfg.Window
	if w <= 0 {
		w = trace.Day
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var fab *fabric
	if cfg.Shards >= 1 {
		var err error
		if fab, err = newShardedFabric(cfg, cfg.Shards, w, now, logf); err != nil {
			return nil, err
		}
	} else {
		st := cfg.Store
		if st == nil {
			if cfg.Dataset == nil {
				return nil, fmt.Errorf("server: nil dataset")
			}
			var err error
			if st, err = store.New(cfg.Dataset); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
		boot := st.Snapshot()
		if len(boot.Dataset().Systems) == 0 {
			return nil, fmt.Errorf("server: dataset has no systems")
		}
		engine := cfg.Engine
		if engine == nil && cfg.Journal != nil {
			engine = cfg.Journal.Engine()
		}
		if engine == nil {
			var err error
			if engine, err = risk.FromAnalyzer(boot.Analyzer(), w); err != nil {
				return nil, err
			}
		}
		br := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, now)
		var err error
		if fab, err = newSingleFabric(st, engine, cfg.Journal, br, cfg, now, logf); err != nil {
			return nil, err
		}
	}
	switch {
	case cfg.SpaceProbeInterval < 0:
		fab.probeEvery = 0 // probe on every gated write attempt
	case cfg.SpaceProbeInterval == 0:
		fab.probeEvery = 5 * time.Second
	default:
		fab.probeEvery = cfg.SpaceProbeInterval
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	limits := defaultLimits()
	for route, lim := range cfg.Limits {
		limits[route] = lim
	}
	limiters := make(map[string]*limiter, len(limits))
	for route, lim := range limits {
		limiters[route] = newLimiter(lim)
	}
	return &Server{
		fabric:  fab,
		frozen:  cfg.FrozenDataset,
		cache:   newResultCache(cacheSize),
		metrics: newMetrics(),
		idem:    newIdemCache(1024),
		limits:  limiters,
		breaker: fab.shards[0].breaker,
		wrap:    cfg.Middleware,
		timeout: timeout,
		now:     now,
		logf:    logf,
		base:    context.Background(),
		name:    defaultTenantName,
	}, nil
}

// Engine returns shard 0's risk engine (the server's whole engine in the
// single-shard configuration) so callers can pre-seed events.
func (s *Server) Engine() *risk.Engine {
	_, eng, _ := s.fabric.shards[0].view()
	return eng
}

// Store returns shard 0's versioned dataset store (the server's whole store
// in the single-shard configuration).
func (s *Server) Store() *store.Store {
	st, _, _ := s.fabric.shards[0].view()
	return st
}

// setVersion stamps the response with the pinned snapshot's dataset
// version, so clients (and the stale-cache test) can tell which dataset a
// response was computed over.
func setVersion(w http.ResponseWriter, snap *store.Snapshot) {
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(snap.Version(), 10))
}

// Handler returns the server's routed HTTP handler, wrapped in the
// configured middleware (chaos injection in tests) when one is set. The
// unprefixed routes serve the default tenant; the same routes under
// /v1/d/{dataset}/ resolve a named tenant from the registry first.
func (s *Server) Handler() http.Handler {
	rt := s.routes()
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", rt["/healthz"])
	mux.Handle("GET /readyz", rt["/readyz"])
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /v1/risk/top", rt["/v1/risk/top"])
	mux.Handle("GET /v1/risk/{node}", rt["/v1/risk/{node}"])
	mux.Handle("GET /v1/condprob", rt["/v1/condprob"])
	mux.Handle("GET /v1/correlations", rt["/v1/correlations"])
	mux.Handle("GET /v1/anomalies", rt["/v1/anomalies"])
	mux.Handle("GET /v1/snapshot", rt["/v1/snapshot"])
	mux.Handle("GET /v1/rates", rt["/v1/rates"])
	mux.Handle("POST /v1/events", rt["/v1/events"])
	// Tenant-scoped mirrors of every dataset route. The dispatcher resolves
	// the tenant, then reuses that tenant's own instrumented handler, so a
	// named tenant gets the same admission, timeout and metrics treatment.
	mux.Handle("GET /v1/d/{dataset}/healthz", s.tenantRoute("/healthz"))
	mux.Handle("GET /v1/d/{dataset}/readyz", s.tenantRoute("/readyz"))
	mux.Handle("GET /v1/d/{dataset}/risk/top", s.tenantRoute("/v1/risk/top"))
	mux.Handle("GET /v1/d/{dataset}/risk/{node}", s.tenantRoute("/v1/risk/{node}"))
	mux.Handle("GET /v1/d/{dataset}/condprob", s.tenantRoute("/v1/condprob"))
	mux.Handle("GET /v1/d/{dataset}/correlations", s.tenantRoute("/v1/correlations"))
	mux.Handle("GET /v1/d/{dataset}/anomalies", s.tenantRoute("/v1/anomalies"))
	mux.Handle("GET /v1/d/{dataset}/snapshot", s.tenantRoute("/v1/snapshot"))
	mux.Handle("GET /v1/d/{dataset}/rates", s.tenantRoute("/v1/rates"))
	mux.Handle("POST /v1/d/{dataset}/events", s.tenantRoute("/v1/events"))
	// Comparative analytics and the dataset-management API live on the root
	// server only.
	mux.Handle("GET /v1/compare/condprob", s.instrument("/v1/compare/condprob", s.handleCompareCondProb))
	mux.Handle("GET /v1/compare/rates", s.instrument("/v1/compare/rates", s.handleCompareRates))
	mux.Handle("POST /v1/datasets", s.instrument("/v1/datasets", s.handleDatasetCreate))
	mux.Handle("GET /v1/datasets", s.instrument("/v1/datasets", s.handleDatasetList))
	mux.Handle("DELETE /v1/datasets/{dataset}", s.instrument("/v1/datasets/{dataset}", s.handleDatasetDelete))
	if s.wrap != nil {
		return s.wrap(mux)
	}
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with admission control, the per-request
// timeout, in-flight tracking for graceful shutdown, and metrics. Requests
// beyond a route's concurrency and queue bounds are shed with 429 and a
// Retry-After hint before any work happens.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	lim := s.limits[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		release, ok := lim.admit(r.Context())
		if !ok {
			s.metrics.shed.Add(1)
			sw.Header().Set("Retry-After", retryAfter)
			s.writeError(sw, http.StatusTooManyRequests, fmt.Errorf("overloaded: %s concurrency limit reached", route))
			s.metrics.observe(route, sw.code, s.now().Sub(start))
			return
		}
		s.inflight.Add(1)
		defer func() {
			release()
			s.inflight.Done()
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h(sw, r.WithContext(ctx))
		s.metrics.observe(route, sw.code, s.now().Sub(start))
	})
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, apiError{Error: err.Error()})
}

// handleHealthz is pure liveness: the process is up and can read its own
// state. Shard health lives in /readyz — a fleet with a dead shard is alive
// but not fully ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f := s.fabric
	body := map[string]any{
		"status":          "ok",
		"systems":         len(f.fleet),
		"window":          f.window.String(),
		"dataset_version": f.maxVersion(),
		"dataset_events":  f.totalEvents(),
	}
	if f.n() > 1 {
		body["shards"] = f.n()
	}
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(f.maxVersion(), 10))
	s.writeJSON(w, http.StatusOK, body)
}

// handleReadyz is the readiness gate: 200 only when every shard is Ready
// and every configured standby has warmed (fully drained its leader's WAL
// at least once). Load balancers should route on this, not /healthz, so a
// server mid-recovery or mid-failover drains instead of serving partials.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, rows := s.fabric.status()
	code := http.StatusOK
	status := "ready"
	switch {
	case !ready:
		code = http.StatusServiceUnavailable
		status = "not-ready"
	case s.fabric.readOnly():
		// Reads still serve — load balancers should keep routing queries —
		// but the status tells operators writes are being rejected.
		status = "read-only"
	}
	body := map[string]any{"status": status, "shards": rows}
	// Named tenants report their own readiness per row; a read-only or
	// recovering tenant degrades only its own routes, so the process-level
	// code (what load balancers route on) stays the default tenant's.
	datasets := map[string]any{}
	s.eachTenant(func(name string, ts *Server) {
		tready, trows := ts.fabric.status()
		tstatus := "ready"
		switch {
		case !tready:
			tstatus = "not-ready"
		case ts.fabric.readOnly():
			tstatus = "read-only"
		}
		datasets[name] = map[string]any{"status": tstatus, "shards": trows}
	})
	if len(datasets) > 0 {
		body["datasets"] = datasets
	}
	s.writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One row per dataset: the default tenant renders unlabeled (the exact
	// pre-registry exposition, so dashboards and the replay SLO gate keep
	// working), named tenants render the same families with a dataset label.
	rows := []metricsRow{{ds: "", m: s.metrics, g: s.gatherGauges()}}
	s.eachTenant(func(name string, ts *Server) {
		rows = append(rows, metricsRow{ds: name, m: ts.metrics, g: ts.gatherGauges()})
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writeMetricsRows(w, rows)
}

// gatherGauges collects the point-in-time gauge values for this server's
// metrics row.
func (s *Server) gatherGauges() gauges {
	f := s.fabric
	open, trips := s.breaker.snapshot()
	g := gauges{
		cacheEntries:  s.cache.Len(),
		breakerOpen:   open,
		breakerTrips:  trips,
		readOnlyEntry: f.roEntries.Load(),
		walAppendErrs: f.walAppendErrs.Load(),
		admission:     make(map[string]admissionGauge, len(s.limits)),
	}
	now := s.now()
	for i, sh := range f.shards {
		st, eng, j := sh.view()
		esnap := eng.Snapshot()
		dsnap := st.Snapshot()
		g.activeEvents += len(esnap.Active)
		g.observedEvents += esnap.Observed
		g.engineLag = max(g.engineLag, eng.Lag(now))
		g.datasetVersion = max(g.datasetVersion, dsnap.Version())
		g.datasetEvents += dsnap.Events()
		g.storeAppends += st.Appends()
		g.storeRebuilds += st.Rebuilds()
		sg := shardGauge{
			state:     f.sup.State(i).String(),
			healthy:   f.sup.State(i) == store.ShardReady,
			version:   dsnap.Version(),
			failovers: sh.failovers.Load(),
			diskFull:  sh.diskFull.Load(),
		}
		g.readOnly = g.readOnly || sg.diskFull
		if j != nil {
			g.walRecords += j.WALCount()
			g.walSegments += j.WALSegments()
		}
		// Replication lag in records: leader appends minus standby applies
		// while the leader lives; once it is dead, what the standby can
		// still read from the log past its position.
		if sb := sh.getStandby(); sb != nil {
			sg.hasStandby = true
			if j != nil {
				if c, a := j.WALCount(), sb.Applied(); c > a {
					sg.lag = c - a
				}
			} else if pending, err := sb.Pending(); err == nil {
				sg.lag = pending
			}
		}
		g.shards = append(g.shards, sg)
	}
	for route, lim := range s.limits {
		if lim == nil {
			continue
		}
		g.admission[route] = admissionGauge{
			inflight: lim.inflight.Load(),
			queued:   lim.queued.Load(),
			peak:     lim.peak.Load(),
			shed:     lim.shed.Load(),
		}
	}
	return g
}

// handleSnapshot serves the engine's full observable state in the same
// canonical form the on-disk snapshot uses. The kill-and-recover test
// compares these bytes between a crashed-and-recovered server and an
// uninterrupted one.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// The version travels in a header, never the body: recovery tests
	// byte-compare snapshot bodies between servers whose store versions
	// legitimately differ (one recovered in a single batch, one fed live).
	f := s.fabric
	idxs := f.allShards()
	versions := make([]uint64, len(idxs))
	parts, errs := scatterShards(r.Context(), f, idxs, func(k, i int, st *store.Store, eng *risk.Engine) (risk.Snapshot, error) {
		versions[k] = st.Snapshot().Version()
		return eng.Snapshot(), nil
	})
	var ok []risk.Snapshot
	for k, err := range errs {
		if err == nil {
			ok = append(ok, parts[k])
		}
	}
	if len(ok) == 0 {
		s.shardUnavailable(w, fmt.Errorf("no shard available"))
		return
	}
	s.stampPartial(w, idxs, versions, errs)
	s.writeJSON(w, http.StatusOK, risk.SnapshotJSON(risk.MergeSnapshots(ok)))
}

// pickSystem resolves an optional system parameter against one pinned
// dataset: 0 means "the dataset's only system" and is an error when there
// are several.
func pickSystem(ds *trace.Dataset, id int) (trace.SystemInfo, error) {
	if id == 0 {
		if len(ds.Systems) == 1 {
			return ds.Systems[0], nil
		}
		return trace.SystemInfo{}, fmt.Errorf("dataset covers %d systems; pass ?system=", len(ds.Systems))
	}
	sys, ok := ds.System(id)
	if !ok {
		return trace.SystemInfo{}, fmt.Errorf("unknown system %d", id)
	}
	return sys, nil
}

// contributionJSON is one scored contribution on the wire.
type contributionJSON struct {
	Time        time.Time `json:"time"`
	Node        int       `json:"node"`
	Category    string    `json:"category"`
	Subtype     string    `json:"subtype,omitempty"`
	Scope       string    `json:"scope"`
	AgeSeconds  float64   `json:"age_seconds"`
	Weight      float64   `json:"weight"`
	Conditional float64   `json:"conditional"`
	Excess      float64   `json:"excess"`
}

// scoreJSON is one node score on the wire.
type scoreJSON struct {
	System        int                `json:"system"`
	Node          int                `json:"node"`
	At            time.Time          `json:"at"`
	Risk          float64            `json:"risk"`
	RiskLo        float64            `json:"risk_lo"`
	RiskHi        float64            `json:"risk_hi"`
	Base          float64            `json:"base"`
	Factor        float64            `json:"factor"`
	Window        string             `json:"window"`
	Contributions []contributionJSON `json:"contributions,omitempty"`
}

func (s *Server) scoreJSON(sc risk.Score) scoreJSON {
	out := scoreJSON{
		System: sc.System,
		Node:   sc.Node,
		At:     sc.At,
		Risk:   sc.Risk,
		RiskLo: sc.Lo,
		RiskHi: sc.Hi,
		Base:   sc.Base,
		Factor: finite(sc.Factor),
		Window: s.fabric.window.String(),
	}
	for _, c := range sc.Contributions {
		cj := contributionJSON{
			Time:        c.Event.Time,
			Node:        c.Event.Node,
			Category:    c.Event.Category.String(),
			Scope:       c.Scope.String(),
			AgeSeconds:  c.Age.Seconds(),
			Weight:      c.Weight,
			Conditional: c.Conditional,
			Excess:      c.Excess,
		}
		if sub := c.Event.SubtypeLabel(); sub != cj.Category {
			cj.Subtype = sub
		}
		out.Contributions = append(out.Contributions, cj)
	}
	return out
}

// finite maps NaN/Inf (JSON-unencodable) to 0 and a large sentinel.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// pickFleetSystem resolves an optional system parameter against the fleet
// catalog: 0 means "the fleet's only system" and is an error when there are
// several.
func (s *Server) pickFleetSystem(id int) (trace.SystemInfo, error) {
	f := s.fabric
	if id == 0 {
		if len(f.fleet) == 1 {
			return f.fleet[0], nil
		}
		return trace.SystemInfo{}, fmt.Errorf("dataset covers %d systems; pass ?system=", len(f.fleet))
	}
	sys, ok := f.fleetSystem(id)
	if !ok {
		return trace.SystemInfo{}, fmt.Errorf("unknown system %d", id)
	}
	return sys, nil
}

// shardUnavailable writes the 503 a down or deadline-missing shard earns.
func (s *Server) shardUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfter)
	s.writeError(w, http.StatusServiceUnavailable, err)
}

func (s *Server) handleRiskNode(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.PathValue("node"))
	if err != nil || node < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", r.PathValue("node")))
		return
	}
	q, err := parseRiskQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	f := s.fabric
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(f.maxVersion(), 10))
	sys, err := s.pickFleetSystem(q.System)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	if !q.At.IsZero() {
		now = q.At
	}
	owner, _ := f.ownerOf(sys.ID)
	var sc risk.Score
	var version uint64
	err = f.call(r.Context(), owner, func(st *store.Store, eng *risk.Engine, _ *risk.Journal) error {
		version = st.Snapshot().Version()
		var serr error
		sc, serr = eng.Score(sys.ID, node, now)
		return serr
	})
	if errors.Is(err, errShardDown) || errors.Is(err, errShardSlow) {
		s.shardUnavailable(w, err)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(version, 10))
	s.writeJSON(w, http.StatusOK, s.scoreJSON(sc))
}

// riskTopResponse is the /v1/risk/top body.
type riskTopResponse struct {
	At     time.Time   `json:"at"`
	Window string      `json:"window"`
	Scores []scoreJSON `json:"scores"`
}

func (s *Server) handleRiskTop(w http.ResponseWriter, r *http.Request) {
	q, err := parseRiskQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	f := s.fabric
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(f.maxVersion(), 10))
	if q.System != 0 {
		if _, err := s.pickFleetSystem(q.System); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// Clamp k to the node population in scope: asking for more rows than
	// nodes is harmless intent, not an error.
	nodes := 0
	for _, sys := range f.fleet {
		if q.System == 0 || sys.ID == q.System {
			nodes += sys.Nodes
		}
	}
	if q.K > nodes && nodes > 0 {
		q.K = nodes
	}
	now := s.now()
	if !q.At.IsZero() {
		now = q.At
	}
	out := riskTopResponse{At: now, Window: f.window.String(), Scores: []scoreJSON{}}

	if q.System != 0 {
		// Per-system: one owner shard answers the whole query.
		owner, _ := f.ownerOf(q.System)
		var scores []risk.Score
		var version uint64
		err := f.call(r.Context(), owner, func(st *store.Store, eng *risk.Engine, _ *risk.Journal) error {
			version = st.Snapshot().Version()
			scores = eng.TopK(0, now)
			return nil
		})
		if err != nil {
			s.shardUnavailable(w, err)
			return
		}
		w.Header().Set("X-Dataset-Version", strconv.FormatUint(version, 10))
		for _, sc := range scores {
			if sc.System != q.System {
				continue
			}
			out.Scores = append(out.Scores, s.scoreJSON(sc))
			if len(out.Scores) >= q.K {
				break
			}
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}

	// Fleet-wide: scatter to every shard, merge under TopK's exact order.
	// Survivors answer even when a shard is down — the response says so.
	idxs := f.allShards()
	versions := make([]uint64, len(idxs))
	parts, errs := scatterShards(r.Context(), f, idxs, func(k, i int, st *store.Store, eng *risk.Engine) ([]risk.Score, error) {
		versions[k] = st.Snapshot().Version()
		return eng.TopK(0, now), nil
	})
	var merged []risk.Score
	anyOK := false
	for k, err := range errs {
		if err == nil {
			anyOK = true
			merged = append(merged, parts[k]...)
		}
	}
	if !anyOK {
		s.shardUnavailable(w, fmt.Errorf("no shard available"))
		return
	}
	sort.Slice(merged, func(i, j int) bool { return risk.ScoreLess(merged[i], merged[j]) })
	s.stampPartial(w, idxs, versions, errs)
	for _, sc := range merged {
		out.Scores = append(out.Scores, s.scoreJSON(sc))
		if len(out.Scores) >= q.K {
			break
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// stampPartial stamps a scatter-gather response: X-Dataset-Version is the
// max surviving shard version, X-Shard-Versions the per-shard version
// vector (multi-shard fabrics only), and X-Partial: true when any shard's
// part is missing — the explicit partial-result contract.
func (s *Server) stampPartial(w http.ResponseWriter, idxs []int, versions []uint64, errs []error) {
	partial := false
	var v uint64
	for k, err := range errs {
		if err == nil {
			v = max(v, versions[k])
		} else {
			partial = true
		}
	}
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(v, 10))
	if s.fabric.n() > 1 {
		w.Header().Set("X-Shard-Versions", s.fabric.versionVector(idxs, versions, errs))
	}
	if partial {
		w.Header().Set("X-Partial", "true")
		s.metrics.partial.Add(1)
	}
}

// proportionJSON is a stats.Proportion with its CI on the wire.
type proportionJSON struct {
	P         float64 `json:"p"`
	Successes int     `json:"successes"`
	Trials    int     `json:"trials"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
}

func proportionOf(p stats.Proportion, ci stats.Interval) proportionJSON {
	return proportionJSON{
		P:         finite(p.P()),
		Successes: p.Successes,
		Trials:    p.Trials,
		CILo:      finite(ci.Lo),
		CIHi:      finite(ci.Hi),
	}
}

// condProbJSON is the /v1/condprob response body.
type condProbJSON struct {
	Anchor         string         `json:"anchor"`
	Target         string         `json:"target"`
	Window         string         `json:"window"`
	Scope          string         `json:"scope"`
	Group          int            `json:"group"`
	DatasetVersion uint64         `json:"dataset_version"`
	Conditional    proportionJSON `json:"conditional"`
	Baseline       proportionJSON `json:"baseline"`
	Factor         float64        `json:"factor"`
	FactorLo       float64        `json:"factor_lo"`
	FactorHi       float64        `json:"factor_hi"`
	PValue         float64        `json:"p_value"`
	Significant    bool           `json:"significant_5pct"`
}

func (s *Server) handleCondProb(w http.ResponseWriter, r *http.Request) {
	q, err := parseCondProbQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	f := s.fabric
	if f.n() == 1 {
		s.condProbSingle(w, r, q, 0)
		return
	}
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(f.maxVersion(), 10))
	involved := f.involvedShards(q.group)
	switch len(involved) {
	case 0:
		// The scope matches no system on any shard; the answer is the empty
		// result, same as one analyzer over zero systems would produce.
		s.writeJSON(w, http.StatusOK, s.condProbResponse(q, f.maxVersion(), analysis.MergeCondResults(q.window, q.scope, nil)))
	case 1:
		s.condProbSingle(w, r, q, involved[0])
	default:
		s.condProbScatter(w, r, q, involved)
	}
}

// condProbSingle answers a conditional-probability query entirely from one
// shard — the single-shard server's whole path, and the fast path when the
// scoped systems all live in one fault domain. Results are cached as
// rendered responses; only cache misses consult the shard's breaker.
func (s *Server) condProbSingle(w http.ResponseWriter, r *http.Request, q condProbQuery, idx int) {
	f := s.fabric
	if st := f.sup.State(idx); st != store.ShardReady {
		s.shardUnavailable(w, fmt.Errorf("%w: shard %d %s", errShardDown, idx, st))
		return
	}
	sh := f.shards[idx]
	st, _, _ := sh.view()
	// Pin one snapshot for the whole request and key the cache by shard,
	// promotion generation and version: an append in flight cannot tear
	// this answer, a cached result computed over an older dataset version
	// can never be served for a newer one, and a result computed against a
	// dead leader dies with it.
	snap := st.Snapshot()
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(snap.Version(), 10))
	key := fmt.Sprintf("s%d.g%d.v%d|%s", idx, sh.gen.Load(), snap.Version(), q.Key())
	// Cached answers flow regardless of breaker state: the pinned snapshot
	// is immutable, so a cached result is correct even while compute is
	// degraded. Only a cache miss consults the breaker — a hit must never
	// consume the half-open trial slot (nothing would report back and the
	// breaker would wedge half-open).
	if val, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		if open, _ := sh.breaker.snapshot(); open {
			s.metrics.degraded.Add(1)
			w.Header().Set("X-Degraded", "cache-only")
		}
		s.writeJSON(w, http.StatusOK, val)
		return
	}
	// While the circuit is open, compute is off-limits: shed cache misses
	// with 503 instead of piling onto a struggling compute pool.
	if !sh.breaker.allow() {
		s.metrics.degraded.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("X-Degraded", "circuit-open")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("condprob compute circuit open"))
		return
	}
	// Compute under the server lifecycle context, not the request context:
	// the result is shared with concurrent identical requests and cached,
	// so one caller hanging up must not poison it. The request's own
	// timeout still applies to the wait below.
	computed := false
	val, oc, err := s.cache.Do(key, func() (any, error) {
		computed = true
		ctx, cancel := context.WithTimeout(s.base, s.timeout)
		defer cancel()
		return s.computeCondProb(ctx, snap, q)
	})
	switch oc {
	case outcomeHit:
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	case outcomeShared:
		s.metrics.cacheMisses.Add(1)
		s.metrics.shared.Add(1)
		w.Header().Set("X-Cache", "SHARED")
	default:
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	if computed {
		// Only actual compute attempts feed the breaker; a bad request
		// never reaches here, and shared waiters would double-count.
		sh.breaker.report(err == nil)
	}
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, http.StatusOK, val)
}

// condProbScatter answers a conditional-probability query whose scope spans
// several shards: each involved shard computes (or serves from cache) its
// partition's integer success/trial counts, and the parts merge into the
// union's exact statistics (analysis.MergeCondResults). Per-shard parts are
// cached and breaker-gated independently, so one struggling shard degrades
// the answer to a partial instead of failing it.
func (s *Server) condProbScatter(w http.ResponseWriter, r *http.Request, q condProbQuery, involved []int) {
	f := s.fabric
	versions := make([]uint64, len(involved))
	hits := make([]bool, len(involved))
	parts, errs := scatterShards(r.Context(), f, involved, func(k, i int, st *store.Store, eng *risk.Engine) (analysis.CondResult, error) {
		sh := f.shards[i]
		snap := st.Snapshot()
		versions[k] = snap.Version()
		key := fmt.Sprintf("part|s%d.g%d.v%d|%s", i, sh.gen.Load(), snap.Version(), q.Key())
		if val, ok := s.cache.Get(key); ok {
			hits[k] = true
			return val.(analysis.CondResult), nil
		}
		if !sh.breaker.allow() {
			return analysis.CondResult{}, fmt.Errorf("shard %d condprob circuit open", i)
		}
		computed := false
		val, _, err := s.cache.Do(key, func() (any, error) {
			computed = true
			ctx, cancel := context.WithTimeout(s.base, s.timeout)
			defer cancel()
			return s.computeCondPart(ctx, snap, q)
		})
		if computed {
			sh.breaker.report(err == nil)
		}
		if err != nil {
			return analysis.CondResult{}, err
		}
		return val.(analysis.CondResult), nil
	})
	var ok []analysis.CondResult
	allHit := true
	for k, err := range errs {
		if err != nil {
			continue
		}
		ok = append(ok, parts[k])
		if !hits[k] {
			allHit = false
		}
	}
	if len(ok) == 0 {
		s.shardUnavailable(w, fmt.Errorf("no shard available for condprob"))
		return
	}
	if allHit {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	} else {
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	s.stampPartial(w, involved, versions, errs)
	var version uint64
	for k, err := range errs {
		if err == nil {
			version = max(version, versions[k])
		}
	}
	s.writeJSON(w, http.StatusOK, s.condProbResponse(q, version, analysis.MergeCondResults(q.window, q.scope, ok)))
}

// computeCondPart runs the actual analysis for one canonical query over one
// pinned snapshot — the dataset and its indexes cannot change underneath
// it. The raw CondResult is what crosses shard boundaries: integer counts
// merge exactly, rendered statistics do not.
func (s *Server) computeCondPart(ctx context.Context, snap *store.Snapshot, q condProbQuery) (analysis.CondResult, error) {
	anchor, target, err := q.preds()
	if err != nil {
		return analysis.CondResult{}, err
	}
	ds := snap.Dataset()
	systems := ds.Systems
	switch q.group {
	case 1:
		systems = ds.GroupSystems(trace.Group1)
	case 2:
		systems = ds.GroupSystems(trace.Group2)
	}
	// Admission through the shared analysis pool bounds how many kernel
	// computations run at once when many distinct queries miss the cache
	// together.
	var res analysis.CondResult
	err = analysis.Shared().Do(ctx, func() error {
		var cerr error
		res, cerr = snap.Analyzer().CondProbCtx(ctx, systems, anchor, target, q.window, q.scope)
		return cerr
	})
	if err != nil {
		return analysis.CondResult{}, err
	}
	return res, nil
}

// condProbResponse renders a (possibly merged) CondResult as the wire body.
func (s *Server) condProbResponse(q condProbQuery, version uint64, res analysis.CondResult) condProbJSON {
	return condProbJSON{
		Anchor:         q.anchor,
		Target:         q.target,
		Window:         trace.WindowName(q.window),
		Scope:          q.scope.String(),
		Group:          q.group,
		DatasetVersion: version,
		Conditional:    proportionOf(res.Conditional, res.CondCI),
		Baseline:       proportionOf(res.Baseline, res.BaseCI),
		Factor:         finite(res.Factor()),
		FactorLo:       finite(res.FactorCI.Lo),
		FactorHi:       finite(res.FactorCI.Hi),
		PValue:         finite(res.Test.P),
		Significant:    res.Significant(0.05),
	}
}

// computeCondProb is the single-shard compute: one part, rendered.
func (s *Server) computeCondProb(ctx context.Context, snap *store.Snapshot, q condProbQuery) (condProbJSON, error) {
	res, err := s.computeCondPart(ctx, snap, q)
	if err != nil {
		return condProbJSON{}, err
	}
	return s.condProbResponse(q, snap.Version(), res), nil
}

// eventJSON is one failure event on the wire.
type eventJSON struct {
	System   int        `json:"system"`
	Node     int        `json:"node"`
	Time     *time.Time `json:"time,omitempty"`
	Category string     `json:"category"`
	HW       string     `json:"hw,omitempty"`
	SW       string     `json:"sw,omitempty"`
	Env      string     `json:"env,omitempty"`
}

// Timestamp sanity bounds for ingested events: LANL logs start in the
// mid-1990s, so anything before 1990 is a mangled timestamp, and anything
// more than an hour ahead of the server clock is a client clock gone wrong
// — both would sit in the sliding window (or instantly age out of it) and
// silently skew scores.
var minEventTime = time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)

const maxEventSkew = time.Hour

// toFailure converts a wire event, defaulting a missing time to now and
// rejecting timestamps outside plausible bounds.
func (e eventJSON) toFailure(now time.Time) (trace.Failure, error) {
	f := trace.Failure{System: e.System, Node: e.Node, Time: now}
	if e.Time != nil {
		f.Time = *e.Time
		if f.Time.Before(minEventTime) {
			return f, fmt.Errorf("event time %s before %s", f.Time.Format(time.RFC3339), minEventTime.Format(time.RFC3339))
		}
		if f.Time.After(now.Add(maxEventSkew)) {
			return f, fmt.Errorf("event time %s is more than %s in the future", f.Time.Format(time.RFC3339), maxEventSkew)
		}
	}
	var err error
	if f.Category, err = trace.ParseCategory(e.Category); err != nil {
		return f, err
	}
	if e.HW != "" {
		if f.HW, err = trace.ParseHWComponent(e.HW); err != nil {
			return f, err
		}
	}
	if e.SW != "" {
		if f.SW, err = trace.ParseSWClass(e.SW); err != nil {
			return f, err
		}
	}
	if e.Env != "" {
		if f.Env, err = trace.ParseEnvClass(e.Env); err != nil {
			return f, err
		}
	}
	return f, nil
}

// maxEventBody bounds a POST /v1/events body (1 MiB).
const maxEventBody = 1 << 20

// idemKeyHeader carries a client-chosen key that makes POST /v1/events
// retries safe: a request replayed with the same key returns the original
// response without re-ingesting.
const idemKeyHeader = "X-Idempotency-Key"

// eventsResponse is the POST /v1/events response body.
type eventsResponse struct {
	Accepted int              `json:"accepted"`
	Rejected []eventRejection `json:"rejected,omitempty"`
	// DatasetVersion is the store version after this batch was applied —
	// the version whose /v1/condprob answers reflect these events.
	DatasetVersion uint64 `json:"dataset_version"`
}

type eventRejection struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// replayIdem serves the recorded response for a retried idempotency key.
func (s *Server) replayIdem(w http.ResponseWriter, res idemResult) {
	s.metrics.idemReplays.Add(1)
	w.Header().Set("X-Idempotent-Replay", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.code)
	w.Write(res.body)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	idemKey := r.Header.Get(idemKeyHeader)
	var pending *idemPending
	if idemKey != "" {
		for pending == nil {
			res, p, state := s.idem.begin(idemKey)
			switch state {
			case idemHit:
				s.replayIdem(w, res)
				return
			case idemOwned:
				pending = p
			case idemWait:
				// A concurrent request holds this key. Wait for its outcome
				// instead of ingesting a duplicate, then loop: replay what
				// it recorded, or take over the key if it abandoned.
				select {
				case <-p.done:
				case <-r.Context().Done():
					s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request with idempotency key %q still in flight", idemKey))
					return
				}
			}
		}
		// Paths that record no outcome (malformed bodies, panics) must not
		// wedge the key: release the reservation so a retry re-contends.
		defer func() {
			if pending != nil {
				s.idem.abandon(idemKey, pending)
			}
		}()
	}
	// respond writes the response and records it under the idempotency key,
	// so a retry replays this exact outcome instead of re-ingesting.
	respond := func(code int, v any) {
		body, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			s.logf("server: encoding response: %v", err)
			s.writeJSON(w, code, v)
			return
		}
		body = append(body, '\n')
		if pending != nil {
			s.idem.complete(idemKey, pending, code, body)
			pending = nil
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		w.Write(body)
	}
	var req struct {
		Events []eventJSON `json:"events"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEventBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Events) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("no events in request"))
		return
	}
	// Per-tenant event quota: once this dataset has accepted its budget,
	// further ingestion is shed before any work happens. Nothing was
	// ingested, so the idempotency reservation is abandoned (deferred
	// above) and a retry re-contends after the operator raises the quota.
	if qmax := s.quota.MaxEvents; qmax > 0 && int64(s.metrics.eventsIn.Load()) >= qmax {
		w.Header().Set("Retry-After", retryAfter)
		s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("dataset %s event quota (%d events) exhausted", s.name, qmax))
		return
	}
	// Each event routes to the shard owning its system. With a journal
	// configured on that shard, ingestion is write-ahead: the event hits
	// the log (fsync per policy) before the engine sees it, so an acked
	// event survives a crash. An event for a down shard is rejected
	// per-event — the rest of the batch still lands.
	fab := s.fabric
	// Read-only gate: while any shard's WAL disk is full, writes are shed
	// here (503 + Retry-After + X-Read-Only) after one rate-limited probe
	// for recovered space. Nothing was ingested, so the idempotency
	// reservation is abandoned (deferred above) and a retry re-contends.
	if !fab.ensureWritable(s.now()) {
		s.metrics.readOnlyRejects.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("X-Read-Only", "true")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("event log disk full: serving reads only"))
		return
	}
	// Accepted events batch-append to each shard's dataset store unless the
	// dataset is frozen or that shard's journal already applies its
	// observes to the same store (one writer per canonical log, never two).
	pendingStore := make(map[int][]trace.Failure)
	flushStore := func() {
		// The store validates exactly what the engine validated, so a
		// rejection here is a bug, not bad input; surface it in the logs
		// rather than un-acking events the engine (and WAL) accepted.
		for idx, evs := range pendingStore {
			st, _, _ := fab.shards[idx].view()
			if _, err := st.Append(evs); err != nil {
				s.logf("server: shard %d dataset store append: %v", idx, err)
			}
			delete(pendingStore, idx)
		}
	}
	now := s.now()
	accepted := 0
	var rejected []eventRejection
	for i, e := range req.Events {
		f, err := e.toFailure(now)
		owner := -1
		if err == nil {
			var ok bool
			owner, ok = fab.ownerOf(f.System)
			if !ok {
				err = fmt.Errorf("risk: unknown system %d", f.System)
			}
		}
		if err == nil {
			err = fab.call(r.Context(), owner, func(st *store.Store, eng *risk.Engine, j *risk.Journal) error {
				if j != nil {
					return j.Observe(f)
				}
				return eng.Observe(f)
			})
		}
		if err != nil {
			if errors.Is(err, risk.ErrAppend) {
				// The WAL is broken: nothing past this point can be made
				// durable, and claiming acceptance would lie to clients
				// that rely on acked==durable. Fail the whole request —
				// and record the failure under the idempotency key, because
				// events earlier in the batch are already durable and
				// observed: a retry must replay this outcome, not re-ingest
				// that prefix. The durable prefix still reaches the store,
				// keeping dataset and engine telling one story.
				s.logf("server: %v", err)
				fab.walAppendErrs.Add(1)
				flushStore()
				w.Header().Set("X-Dataset-Version", strconv.FormatUint(fab.maxVersion(), 10))
				if iofault.IsDiskFull(err) {
					// Disk full is the one append fault the server survives
					// degraded: latch read-only, keep serving reads, and
					// tell the client to retry once space returns.
					fab.markDiskFull(owner)
					w.Header().Set("Retry-After", retryAfter)
					w.Header().Set("X-Read-Only", "true")
					if accepted > 0 {
						// A durable prefix exists — record the 503 under the
						// idempotency key so a retry replays it instead of
						// double-ingesting the prefix.
						respond(http.StatusServiceUnavailable, apiError{Error: "event log disk full: serving reads only"})
					} else {
						// Nothing durable: abandon the reservation so the
						// retry re-contends after space recovers.
						s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("event log disk full: serving reads only"))
					}
					return
				}
				respond(http.StatusInternalServerError, apiError{Error: "event log unavailable"})
				return
			}
			rejected = append(rejected, eventRejection{Index: i, Error: err.Error()})
			s.metrics.eventsBad.Add(1)
			continue
		}
		accepted++
		s.metrics.eventsIn.Add(1)
		st, _, j := fab.shards[owner].view()
		if !s.frozen && (j == nil || j.Store() != st) {
			pendingStore[owner] = append(pendingStore[owner], f)
		}
	}
	flushStore()
	version := fab.maxVersion()
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(version, 10))
	code := http.StatusOK
	if accepted == 0 {
		code = http.StatusBadRequest
	}
	respond(code, eventsResponse{Accepted: accepted, Rejected: rejected, DatasetVersion: version})
}

// Serve listens on addr and serves until ctx is cancelled, then drains
// in-flight requests and returns nil. It is the body of cmd/hpcserve.
func Serve(ctx context.Context, addr string, cfg Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, cfg)
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before giving up.
const shutdownGrace = 5 * time.Second

// ServeListener serves on an existing listener (which it takes ownership
// of) until ctx is cancelled. Tests use it with a 127.0.0.1:0 listener.
func ServeListener(ctx context.Context, ln net.Listener, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	s.setBase(ctx)
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	// Periodic maintenance: decay keeps engine memory bounded while the
	// feed is quiet, and each shard's journal gets its WAL synced and its
	// snapshot policy consulted. The derived context stops the goroutine on
	// any exit path, including an immediate Serve error.
	dctx, dcancel := context.WithCancel(ctx)
	decayDone := make(chan struct{})
	go func() {
		defer close(decayDone)
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-dctx.Done():
				return
			case now := <-t.C:
				s.fabric.maintain(now)
				s.eachTenant(func(_ string, ts *Server) { ts.fabric.maintain(now) })
			}
		}
	}()
	// Supervision: heartbeats, standby replication catchup, and automatic
	// failover. Single-shard fabrics without a standby skip the loop — the
	// legacy server had no supervisor and keeps exactly that behavior.
	supDone := make(chan struct{})
	if s.fabric.needsSupervision() {
		go func() {
			defer close(supDone)
			s.fabric.supervise(dctx)
		}()
	} else {
		close(supDone)
	}
	// Named tenants share one supervision ticker: each tick drives every
	// tenant fabric that wants supervision (multi-shard or standby-backed).
	// Tenants created mid-serve are picked up on the next tick.
	tenantSupDone := make(chan struct{})
	go func() {
		defer close(tenantSupDone)
		t := time.NewTicker(heartbeatIntervalOr(cfg.HeartbeatInterval))
		defer t.Stop()
		for {
			select {
			case <-dctx.Done():
				return
			case <-t.C:
				s.eachTenant(func(_ string, ts *Server) {
					if ts.fabric.needsSupervision() {
						ts.fabric.tick(dctx)
					}
				})
			}
		}
	}()
	// Shutdown ordering: stop accepting, join in-flight handlers, then tear
	// down the maintenance goroutines and flush every shard's journal.
	// Handlers may touch the journals, so they must outlive them.
	defer func() {
		done := make(chan struct{})
		go func() { s.inflight.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(shutdownGrace):
			s.logf("hpcserve: gave up waiting for in-flight requests")
		}
		dcancel()
		<-decayDone
		<-supDone
		<-tenantSupDone
		s.fabric.syncAll()
		// Closing the registry syncs and detaches every named tenant's
		// journals (Server.Close), making their WAL trees reopenable.
		if s.reg != nil {
			s.reg.CloseAll()
		}
	}()
	if cfg.OnStart != nil {
		go cfg.OnStart(dctx, s)
	}

	s.logf("hpcserve: listening on http://%s (window %s, %d systems, dataset v%d)",
		ln.Addr(), s.fabric.window, len(s.fabric.fleet), s.fabric.maxVersion())
	if s.fabric.n() > 1 {
		s.logf("hpcserve: serving %d shards (standby=%v)", s.fabric.n(), cfg.Standby)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logf("hpcserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err = hs.Shutdown(shctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
