// Package server is the HTTP serving layer over the toolkit: a JSON API
// exposing the online risk engine (internal/risk) and the offline
// conditional-probability analysis (internal/analysis) of one in-memory
// dataset.
//
// Endpoints:
//
//	GET  /v1/risk/{node}?system=S     one node's live follow-up-failure risk
//	GET  /v1/risk/top?k=K&system=S    the K highest-risk nodes right now
//	GET  /v1/condprob?anchor=&target=&window=&scope=&group=
//	                                  cached conditional-vs-baseline query
//	GET  /v1/snapshot                 canonical engine state (recovery checks)
//	POST /v1/events                   feed failure events into the engine
//	GET  /healthz                     liveness
//	GET  /metrics                     Prometheus text metrics
//
// The server answers every request from an immutable snapshot of a
// versioned dataset store (internal/store): handlers pin one snapshot, so a
// response is internally consistent even while POST /v1/events advances the
// dataset underneath. Responses carry the snapshot's version in an
// X-Dataset-Version header, and conditional-probability cache keys embed it,
// so a cached answer can never leak across dataset versions.
//
// Conditional-probability responses are cached on the canonicalized query
// and deduplicated singleflight-style: concurrent identical queries compute
// once. Every request runs under a timeout and per-route admission control
// (overload is shed with 429 + Retry-After); a circuit breaker degrades
// condprob to cached answers when compute keeps failing. With a
// risk.Journal configured, POST /v1/events is write-ahead logged so acked
// events survive a crash, and X-Idempotency-Key makes retries safe. Serve
// shuts down gracefully when its context is cancelled, joining in-flight
// handlers before tearing down shared state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/stats"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// Config assembles a Server.
type Config struct {
	// Dataset is the in-memory dataset the server answers from; the server
	// wraps it in a private versioned store. Required unless Store is set.
	Dataset *trace.Dataset
	// Store, when set, is the versioned dataset store the server resolves
	// requests against, and Dataset is ignored. Pass the same store the
	// journal applies events to so batch history and live ingest share one
	// canonical event log.
	Store *store.Store
	// FrozenDataset stops POST /v1/events from advancing the server's own
	// store: accepted events still feed the risk engine, but condprob
	// answers stay pinned to the boot dataset. A journal that owns the
	// store keeps advancing it regardless.
	FrozenDataset bool
	// Window is the risk engine's sliding window (and the lift table's
	// look-ahead). Defaults to one day. Ignored when Engine is set.
	Window time.Duration
	// Engine overrides the engine built from Dataset/Window — pass one to
	// reuse a pre-built lift table.
	Engine *risk.Engine
	// Journal, when set, makes ingestion durable: POST /v1/events appends
	// to its write-ahead log before the engine observes anything, and the
	// serve loop drives its fsync/snapshot maintenance. The journal must
	// wrap the same engine the server scores with.
	Journal *risk.Journal
	// RequestTimeout bounds each request's computation; defaults to 10s.
	RequestTimeout time.Duration
	// CacheSize bounds the condprob result cache; defaults to 256 entries.
	CacheSize int
	// Limits overrides per-route admission limits; routes not listed keep
	// their defaults (see defaultLimits). A zero-Concurrency entry makes
	// that route unlimited.
	Limits map[string]RouteLimit
	// BreakerThreshold is how many consecutive condprob compute failures
	// open the circuit; defaults to 5.
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before one trial
	// compute probes recovery; defaults to 10s.
	BreakerCooldown time.Duration
	// Middleware, when set, wraps the routed handler — the chaos injector
	// (internal/faultinject) plugs in here.
	Middleware func(http.Handler) http.Handler
	// Now supplies the clock; defaults to time.Now. Tests inject a fake.
	Now func() time.Time
	// Logf, when set, receives serve-lifecycle log lines.
	Logf func(format string, args ...any)
}

// defaultLimits are the per-route admission bounds: the condprob compute
// path is the expensive one and gets the tightest concurrency; reads and
// ingest are cheap and get generous bounds that still stop a stampede.
func defaultLimits() map[string]RouteLimit {
	return map[string]RouteLimit{
		"/v1/condprob":    {Concurrency: 2 * runtime.GOMAXPROCS(0), Queue: 64},
		"/v1/risk/top":    {Concurrency: 32, Queue: 128},
		"/v1/risk/{node}": {Concurrency: 32, Queue: 128},
		"/v1/events":      {Concurrency: 16, Queue: 128},
		"/v1/snapshot":    {Concurrency: 2, Queue: 8},
	}
}

// Server answers the API over one dataset. Build with New; the zero value
// is not usable.
type Server struct {
	store   *store.Store
	frozen  bool
	engine  *risk.Engine
	journal *risk.Journal
	cache   *resultCache
	metrics *metrics
	idem    *idemCache
	limits  map[string]*limiter
	breaker *breaker
	wrap    func(http.Handler) http.Handler
	timeout time.Duration
	now     func() time.Time
	logf    func(format string, args ...any)
	// inflight tracks running request handlers so shutdown can join them
	// before tearing down shared state.
	inflight sync.WaitGroup
	// base is the lifecycle context detached computations run under, so a
	// singleflight leader hanging up does not fail its followers.
	base context.Context
}

// New builds a server over the config's store (or a private store over its
// dataset), constructing the risk engine (lift table, sliding windows) from
// the boot snapshot's analyzer when one is not supplied.
func New(cfg Config) (*Server, error) {
	st := cfg.Store
	if st == nil {
		if cfg.Dataset == nil {
			return nil, fmt.Errorf("server: nil dataset")
		}
		var err error
		if st, err = store.New(cfg.Dataset); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	boot := st.Snapshot()
	if len(boot.Dataset().Systems) == 0 {
		return nil, fmt.Errorf("server: dataset has no systems")
	}
	w := cfg.Window
	if w <= 0 {
		w = trace.Day
	}
	engine := cfg.Engine
	if engine == nil && cfg.Journal != nil {
		engine = cfg.Journal.Engine()
	}
	if engine == nil {
		var err error
		if engine, err = risk.FromAnalyzer(boot.Analyzer(), w); err != nil {
			return nil, err
		}
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	limits := defaultLimits()
	for route, lim := range cfg.Limits {
		limits[route] = lim
	}
	limiters := make(map[string]*limiter, len(limits))
	for route, lim := range limits {
		limiters[route] = newLimiter(lim)
	}
	return &Server{
		store:   st,
		frozen:  cfg.FrozenDataset,
		engine:  engine,
		journal: cfg.Journal,
		cache:   newResultCache(cacheSize),
		metrics: newMetrics(),
		idem:    newIdemCache(1024),
		limits:  limiters,
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, now),
		wrap:    cfg.Middleware,
		timeout: timeout,
		now:     now,
		logf:    logf,
		base:    context.Background(),
	}, nil
}

// Engine returns the server's risk engine (shared, safe for concurrent
// use) so callers can pre-seed events.
func (s *Server) Engine() *risk.Engine { return s.engine }

// Store returns the versioned dataset store the server answers from.
func (s *Server) Store() *store.Store { return s.store }

// setVersion stamps the response with the pinned snapshot's dataset
// version, so clients (and the stale-cache test) can tell which dataset a
// response was computed over.
func setVersion(w http.ResponseWriter, snap *store.Snapshot) {
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(snap.Version(), 10))
}

// Handler returns the server's routed HTTP handler, wrapped in the
// configured middleware (chaos injection in tests) when one is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /v1/risk/top", s.instrument("/v1/risk/top", s.handleRiskTop))
	mux.Handle("GET /v1/risk/{node}", s.instrument("/v1/risk/{node}", s.handleRiskNode))
	mux.Handle("GET /v1/condprob", s.instrument("/v1/condprob", s.handleCondProb))
	mux.Handle("GET /v1/snapshot", s.instrument("/v1/snapshot", s.handleSnapshot))
	mux.Handle("POST /v1/events", s.instrument("/v1/events", s.handleEvents))
	if s.wrap != nil {
		return s.wrap(mux)
	}
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with admission control, the per-request
// timeout, in-flight tracking for graceful shutdown, and metrics. Requests
// beyond a route's concurrency and queue bounds are shed with 429 and a
// Retry-After hint before any work happens.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	lim := s.limits[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		release, ok := lim.admit(r.Context())
		if !ok {
			s.metrics.shed.Add(1)
			sw.Header().Set("Retry-After", retryAfter)
			s.writeError(sw, http.StatusTooManyRequests, fmt.Errorf("overloaded: %s concurrency limit reached", route))
			s.metrics.observe(route, sw.code, s.now().Sub(start))
			return
		}
		s.inflight.Add(1)
		defer func() {
			release()
			s.inflight.Done()
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h(sw, r.WithContext(ctx))
		s.metrics.observe(route, sw.code, s.now().Sub(start))
	})
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	setVersion(w, snap)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"systems":         len(snap.Dataset().Systems),
		"window":          s.engine.Window().String(),
		"dataset_version": snap.Version(),
		"dataset_events":  snap.Events(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	dsnap := s.store.Snapshot()
	open, trips := s.breaker.snapshot()
	g := gauges{
		engineLag:      s.engine.Lag(s.now()),
		activeEvents:   len(snap.Active),
		observedEvents: snap.Observed,
		cacheEntries:   s.cache.Len(),
		breakerOpen:    open,
		breakerTrips:   trips,
		datasetVersion: dsnap.Version(),
		datasetEvents:  dsnap.Events(),
		storeAppends:   s.store.Appends(),
		storeRebuilds:  s.store.Rebuilds(),
		admission:      make(map[string]admissionGauge, len(s.limits)),
	}
	for route, lim := range s.limits {
		if lim == nil {
			continue
		}
		g.admission[route] = admissionGauge{
			inflight: lim.inflight.Load(),
			queued:   lim.queued.Load(),
			peak:     lim.peak.Load(),
			shed:     lim.shed.Load(),
		}
	}
	if s.journal != nil {
		g.walRecords = s.journal.WALCount()
		g.walSegments = s.journal.WALSegments()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, g)
}

// handleSnapshot serves the engine's full observable state in the same
// canonical form the on-disk snapshot uses. The kill-and-recover test
// compares these bytes between a crashed-and-recovered server and an
// uninterrupted one.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// The version travels in a header, never the body: recovery tests
	// byte-compare snapshot bodies between servers whose store versions
	// legitimately differ (one recovered in a single batch, one fed live).
	setVersion(w, s.store.Snapshot())
	s.writeJSON(w, http.StatusOK, risk.SnapshotJSON(s.engine.Snapshot()))
}

// pickSystem resolves an optional system parameter against one pinned
// dataset: 0 means "the dataset's only system" and is an error when there
// are several.
func pickSystem(ds *trace.Dataset, id int) (trace.SystemInfo, error) {
	if id == 0 {
		if len(ds.Systems) == 1 {
			return ds.Systems[0], nil
		}
		return trace.SystemInfo{}, fmt.Errorf("dataset covers %d systems; pass ?system=", len(ds.Systems))
	}
	sys, ok := ds.System(id)
	if !ok {
		return trace.SystemInfo{}, fmt.Errorf("unknown system %d", id)
	}
	return sys, nil
}

// contributionJSON is one scored contribution on the wire.
type contributionJSON struct {
	Time        time.Time `json:"time"`
	Node        int       `json:"node"`
	Category    string    `json:"category"`
	Subtype     string    `json:"subtype,omitempty"`
	Scope       string    `json:"scope"`
	AgeSeconds  float64   `json:"age_seconds"`
	Weight      float64   `json:"weight"`
	Conditional float64   `json:"conditional"`
	Excess      float64   `json:"excess"`
}

// scoreJSON is one node score on the wire.
type scoreJSON struct {
	System        int                `json:"system"`
	Node          int                `json:"node"`
	At            time.Time          `json:"at"`
	Risk          float64            `json:"risk"`
	RiskLo        float64            `json:"risk_lo"`
	RiskHi        float64            `json:"risk_hi"`
	Base          float64            `json:"base"`
	Factor        float64            `json:"factor"`
	Window        string             `json:"window"`
	Contributions []contributionJSON `json:"contributions,omitempty"`
}

func (s *Server) scoreJSON(sc risk.Score) scoreJSON {
	out := scoreJSON{
		System: sc.System,
		Node:   sc.Node,
		At:     sc.At,
		Risk:   sc.Risk,
		RiskLo: sc.Lo,
		RiskHi: sc.Hi,
		Base:   sc.Base,
		Factor: finite(sc.Factor),
		Window: s.engine.Window().String(),
	}
	for _, c := range sc.Contributions {
		cj := contributionJSON{
			Time:        c.Event.Time,
			Node:        c.Event.Node,
			Category:    c.Event.Category.String(),
			Scope:       c.Scope.String(),
			AgeSeconds:  c.Age.Seconds(),
			Weight:      c.Weight,
			Conditional: c.Conditional,
			Excess:      c.Excess,
		}
		if sub := c.Event.SubtypeLabel(); sub != cj.Category {
			cj.Subtype = sub
		}
		out.Contributions = append(out.Contributions, cj)
	}
	return out
}

// finite maps NaN/Inf (JSON-unencodable) to 0 and a large sentinel.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

func (s *Server) handleRiskNode(w http.ResponseWriter, r *http.Request) {
	node, err := strconv.Atoi(r.PathValue("node"))
	if err != nil || node < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad node %q", r.PathValue("node")))
		return
	}
	q, err := parseRiskQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.store.Snapshot()
	setVersion(w, snap)
	sys, err := pickSystem(snap.Dataset(), q.System)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	if !q.At.IsZero() {
		now = q.At
	}
	sc, err := s.engine.Score(sys.ID, node, now)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.scoreJSON(sc))
}

func (s *Server) handleRiskTop(w http.ResponseWriter, r *http.Request) {
	q, err := parseRiskQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.store.Snapshot()
	setVersion(w, snap)
	if q.System != 0 {
		if _, err := pickSystem(snap.Dataset(), q.System); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// Clamp k to the node population in scope: asking for more rows than
	// nodes is harmless intent, not an error.
	nodes := 0
	for _, sys := range snap.Dataset().Systems {
		if q.System == 0 || sys.ID == q.System {
			nodes += sys.Nodes
		}
	}
	if q.K > nodes && nodes > 0 {
		q.K = nodes
	}
	now := s.now()
	if !q.At.IsZero() {
		now = q.At
	}
	scores := s.engine.TopK(0, now)
	out := struct {
		At     time.Time   `json:"at"`
		Window string      `json:"window"`
		Scores []scoreJSON `json:"scores"`
	}{At: now, Window: s.engine.Window().String(), Scores: []scoreJSON{}}
	for _, sc := range scores {
		if q.System != 0 && sc.System != q.System {
			continue
		}
		out.Scores = append(out.Scores, s.scoreJSON(sc))
		if len(out.Scores) >= q.K {
			break
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// proportionJSON is a stats.Proportion with its CI on the wire.
type proportionJSON struct {
	P         float64 `json:"p"`
	Successes int     `json:"successes"`
	Trials    int     `json:"trials"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
}

func proportionOf(p stats.Proportion, ci stats.Interval) proportionJSON {
	return proportionJSON{
		P:         finite(p.P()),
		Successes: p.Successes,
		Trials:    p.Trials,
		CILo:      finite(ci.Lo),
		CIHi:      finite(ci.Hi),
	}
}

// condProbJSON is the /v1/condprob response body.
type condProbJSON struct {
	Anchor         string         `json:"anchor"`
	Target         string         `json:"target"`
	Window         string         `json:"window"`
	Scope          string         `json:"scope"`
	Group          int            `json:"group"`
	DatasetVersion uint64         `json:"dataset_version"`
	Conditional    proportionJSON `json:"conditional"`
	Baseline       proportionJSON `json:"baseline"`
	Factor         float64        `json:"factor"`
	FactorLo       float64        `json:"factor_lo"`
	FactorHi       float64        `json:"factor_hi"`
	PValue         float64        `json:"p_value"`
	Significant    bool           `json:"significant_5pct"`
}

func (s *Server) handleCondProb(w http.ResponseWriter, r *http.Request) {
	q, err := parseCondProbQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Pin one snapshot for the whole request and key the cache by its
	// version: an append in flight cannot tear this answer, and a cached
	// result computed over an older dataset version can never be served
	// for a newer one (the key simply differs).
	snap := s.store.Snapshot()
	setVersion(w, snap)
	key := fmt.Sprintf("v%d|%s", snap.Version(), q.Key())
	// Cached answers flow regardless of breaker state: the pinned snapshot
	// is immutable, so a cached result is correct even while compute is
	// degraded. Only a cache miss consults the breaker — a hit must never
	// consume the half-open trial slot (nothing would report back and the
	// breaker would wedge half-open).
	if val, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		if open, _ := s.breaker.snapshot(); open {
			s.metrics.degraded.Add(1)
			w.Header().Set("X-Degraded", "cache-only")
		}
		s.writeJSON(w, http.StatusOK, val)
		return
	}
	// While the circuit is open, compute is off-limits: shed cache misses
	// with 503 instead of piling onto a struggling compute pool.
	if !s.breaker.allow() {
		s.metrics.degraded.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("X-Degraded", "circuit-open")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("condprob compute circuit open"))
		return
	}
	// Compute under the server lifecycle context, not the request context:
	// the result is shared with concurrent identical requests and cached,
	// so one caller hanging up must not poison it. The request's own
	// timeout still applies to the wait below.
	computed := false
	val, oc, err := s.cache.Do(key, func() (any, error) {
		computed = true
		ctx, cancel := context.WithTimeout(s.base, s.timeout)
		defer cancel()
		return s.computeCondProb(ctx, snap, q)
	})
	switch oc {
	case outcomeHit:
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	case outcomeShared:
		s.metrics.cacheMisses.Add(1)
		s.metrics.shared.Add(1)
		w.Header().Set("X-Cache", "SHARED")
	default:
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	if computed {
		// Only actual compute attempts feed the breaker; a bad request
		// never reaches here, and shared waiters would double-count.
		s.breaker.report(err == nil)
	}
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, http.StatusOK, val)
}

// computeCondProb runs the actual analysis for one canonical query over one
// pinned snapshot — the dataset and its indexes cannot change underneath it.
func (s *Server) computeCondProb(ctx context.Context, snap *store.Snapshot, q condProbQuery) (condProbJSON, error) {
	anchor, target, err := q.preds()
	if err != nil {
		return condProbJSON{}, err
	}
	ds := snap.Dataset()
	systems := ds.Systems
	switch q.group {
	case 1:
		systems = ds.GroupSystems(trace.Group1)
	case 2:
		systems = ds.GroupSystems(trace.Group2)
	}
	// Admission through the shared analysis pool bounds how many kernel
	// computations run at once when many distinct queries miss the cache
	// together.
	var res analysis.CondResult
	err = analysis.Shared().Do(ctx, func() error {
		var cerr error
		res, cerr = snap.Analyzer().CondProbCtx(ctx, systems, anchor, target, q.window, q.scope)
		return cerr
	})
	if err != nil {
		return condProbJSON{}, err
	}
	return condProbJSON{
		Anchor:         q.anchor,
		Target:         q.target,
		Window:         trace.WindowName(q.window),
		Scope:          q.scope.String(),
		Group:          q.group,
		DatasetVersion: snap.Version(),
		Conditional:    proportionOf(res.Conditional, res.CondCI),
		Baseline:       proportionOf(res.Baseline, res.BaseCI),
		Factor:         finite(res.Factor()),
		FactorLo:       finite(res.FactorCI.Lo),
		FactorHi:       finite(res.FactorCI.Hi),
		PValue:         finite(res.Test.P),
		Significant:    res.Significant(0.05),
	}, nil
}

// eventJSON is one failure event on the wire.
type eventJSON struct {
	System   int        `json:"system"`
	Node     int        `json:"node"`
	Time     *time.Time `json:"time,omitempty"`
	Category string     `json:"category"`
	HW       string     `json:"hw,omitempty"`
	SW       string     `json:"sw,omitempty"`
	Env      string     `json:"env,omitempty"`
}

// Timestamp sanity bounds for ingested events: LANL logs start in the
// mid-1990s, so anything before 1990 is a mangled timestamp, and anything
// more than an hour ahead of the server clock is a client clock gone wrong
// — both would sit in the sliding window (or instantly age out of it) and
// silently skew scores.
var minEventTime = time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)

const maxEventSkew = time.Hour

// toFailure converts a wire event, defaulting a missing time to now and
// rejecting timestamps outside plausible bounds.
func (e eventJSON) toFailure(now time.Time) (trace.Failure, error) {
	f := trace.Failure{System: e.System, Node: e.Node, Time: now}
	if e.Time != nil {
		f.Time = *e.Time
		if f.Time.Before(minEventTime) {
			return f, fmt.Errorf("event time %s before %s", f.Time.Format(time.RFC3339), minEventTime.Format(time.RFC3339))
		}
		if f.Time.After(now.Add(maxEventSkew)) {
			return f, fmt.Errorf("event time %s is more than %s in the future", f.Time.Format(time.RFC3339), maxEventSkew)
		}
	}
	var err error
	if f.Category, err = trace.ParseCategory(e.Category); err != nil {
		return f, err
	}
	if e.HW != "" {
		if f.HW, err = trace.ParseHWComponent(e.HW); err != nil {
			return f, err
		}
	}
	if e.SW != "" {
		if f.SW, err = trace.ParseSWClass(e.SW); err != nil {
			return f, err
		}
	}
	if e.Env != "" {
		if f.Env, err = trace.ParseEnvClass(e.Env); err != nil {
			return f, err
		}
	}
	return f, nil
}

// maxEventBody bounds a POST /v1/events body (1 MiB).
const maxEventBody = 1 << 20

// idemKeyHeader carries a client-chosen key that makes POST /v1/events
// retries safe: a request replayed with the same key returns the original
// response without re-ingesting.
const idemKeyHeader = "X-Idempotency-Key"

// eventsResponse is the POST /v1/events response body.
type eventsResponse struct {
	Accepted int              `json:"accepted"`
	Rejected []eventRejection `json:"rejected,omitempty"`
	// DatasetVersion is the store version after this batch was applied —
	// the version whose /v1/condprob answers reflect these events.
	DatasetVersion uint64 `json:"dataset_version"`
}

type eventRejection struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// replayIdem serves the recorded response for a retried idempotency key.
func (s *Server) replayIdem(w http.ResponseWriter, res idemResult) {
	s.metrics.idemReplays.Add(1)
	w.Header().Set("X-Idempotent-Replay", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.code)
	w.Write(res.body)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	idemKey := r.Header.Get(idemKeyHeader)
	var pending *idemPending
	if idemKey != "" {
		for pending == nil {
			res, p, state := s.idem.begin(idemKey)
			switch state {
			case idemHit:
				s.replayIdem(w, res)
				return
			case idemOwned:
				pending = p
			case idemWait:
				// A concurrent request holds this key. Wait for its outcome
				// instead of ingesting a duplicate, then loop: replay what
				// it recorded, or take over the key if it abandoned.
				select {
				case <-p.done:
				case <-r.Context().Done():
					s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request with idempotency key %q still in flight", idemKey))
					return
				}
			}
		}
		// Paths that record no outcome (malformed bodies, panics) must not
		// wedge the key: release the reservation so a retry re-contends.
		defer func() {
			if pending != nil {
				s.idem.abandon(idemKey, pending)
			}
		}()
	}
	// respond writes the response and records it under the idempotency key,
	// so a retry replays this exact outcome instead of re-ingesting.
	respond := func(code int, v any) {
		body, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			s.logf("server: encoding response: %v", err)
			s.writeJSON(w, code, v)
			return
		}
		body = append(body, '\n')
		if pending != nil {
			s.idem.complete(idemKey, pending, code, body)
			pending = nil
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		w.Write(body)
	}
	var req struct {
		Events []eventJSON `json:"events"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEventBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Events) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("no events in request"))
		return
	}
	// With a journal configured, ingestion is write-ahead: the event hits
	// the log (fsync per policy) before the engine sees it, so an acked
	// event survives a crash.
	observe := s.engine.Observe
	if s.journal != nil {
		observe = s.journal.Observe
	}
	// The server batch-appends accepted events to its dataset store unless
	// the dataset is frozen or the journal already applies its observes to
	// this same store (one writer per canonical log, never two).
	storeIngest := !s.frozen && (s.journal == nil || s.journal.Store() != s.store)
	var acceptedEvents []trace.Failure
	flushStore := func() {
		if !storeIngest || len(acceptedEvents) == 0 {
			return
		}
		// The store validates exactly what the engine validated, so a
		// rejection here is a bug, not bad input; surface it in the logs
		// rather than un-acking events the engine (and WAL) accepted.
		if _, err := s.store.Append(acceptedEvents); err != nil {
			s.logf("server: dataset store append: %v", err)
		}
		acceptedEvents = nil
	}
	now := s.now()
	accepted := 0
	var rejected []eventRejection
	for i, e := range req.Events {
		f, err := e.toFailure(now)
		if err == nil {
			err = observe(f)
		}
		if err != nil {
			if errors.Is(err, risk.ErrAppend) {
				// The WAL is broken: nothing past this point can be made
				// durable, and claiming acceptance would lie to clients
				// that rely on acked==durable. Fail the whole request —
				// and record the failure under the idempotency key, because
				// events earlier in the batch are already durable and
				// observed: a retry must replay this 500, not re-ingest
				// that prefix. The durable prefix still reaches the store,
				// keeping dataset and engine telling one story.
				s.logf("server: %v", err)
				flushStore()
				setVersion(w, s.store.Snapshot())
				respond(http.StatusInternalServerError, apiError{Error: "event log unavailable"})
				return
			}
			rejected = append(rejected, eventRejection{Index: i, Error: err.Error()})
			s.metrics.eventsBad.Add(1)
			continue
		}
		accepted++
		s.metrics.eventsIn.Add(1)
		acceptedEvents = append(acceptedEvents, f)
	}
	flushStore()
	snap := s.store.Snapshot()
	setVersion(w, snap)
	code := http.StatusOK
	if accepted == 0 {
		code = http.StatusBadRequest
	}
	respond(code, eventsResponse{Accepted: accepted, Rejected: rejected, DatasetVersion: snap.Version()})
}

// Serve listens on addr and serves until ctx is cancelled, then drains
// in-flight requests and returns nil. It is the body of cmd/hpcserve.
func Serve(ctx context.Context, addr string, cfg Config) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, cfg)
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before giving up.
const shutdownGrace = 5 * time.Second

// ServeListener serves on an existing listener (which it takes ownership
// of) until ctx is cancelled. Tests use it with a 127.0.0.1:0 listener.
func ServeListener(ctx context.Context, ln net.Listener, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	s.base = ctx
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	// Periodic maintenance: decay keeps engine memory bounded while the
	// feed is quiet, and a configured journal gets its WAL synced and its
	// snapshot policy consulted. The derived context stops the goroutine on
	// any exit path, including an immediate Serve error.
	dctx, dcancel := context.WithCancel(ctx)
	decayDone := make(chan struct{})
	go func() {
		defer close(decayDone)
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-dctx.Done():
				return
			case now := <-t.C:
				s.engine.Decay(now)
				if s.journal != nil {
					if err := s.journal.Sync(); err != nil {
						s.logf("hpcserve: wal sync: %v", err)
					}
					if wrote, err := s.journal.MaybeSnapshot(now); err != nil {
						s.logf("hpcserve: snapshot: %v", err)
					} else if wrote {
						s.logf("hpcserve: snapshot written (%d wal records applied)", s.journal.WALCount())
					}
				}
			}
		}
	}()
	// Shutdown ordering: stop accepting, join in-flight handlers, then tear
	// down the maintenance goroutine and flush the journal. Handlers may
	// touch the journal, so it must outlive them.
	defer func() {
		done := make(chan struct{})
		go func() { s.inflight.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(shutdownGrace):
			s.logf("hpcserve: gave up waiting for in-flight requests")
		}
		dcancel()
		<-decayDone
		if s.journal != nil {
			if err := s.journal.Sync(); err != nil {
				s.logf("hpcserve: final wal sync: %v", err)
			}
		}
	}()

	boot := s.store.Snapshot()
	s.logf("hpcserve: listening on http://%s (window %s, %d systems, dataset v%d)",
		ln.Addr(), s.engine.Window(), len(boot.Dataset().Systems), boot.Version())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logf("hpcserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	err = hs.Shutdown(shctx)
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
