package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/iofault"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// doReq issues one request with optional headers and returns the response
// plus its full body.
func doReq(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// createTenant registers a named dataset through the admin API and asserts
// the 201.
func createTenant(t *testing.T, base, body string, hdr map[string]string) datasetStatusJSON {
	t.Helper()
	resp, b := doReq(t, http.MethodPost, base+"/v1/datasets", body, hdr)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/datasets %s = %d; body: %s", body, resp.StatusCode, b)
	}
	var row datasetStatusJSON
	if err := json.Unmarshal(b, &row); err != nil {
		t.Fatalf("decoding create response: %v; body: %s", err, b)
	}
	return row
}

// mirrorDefault rewrites an unprefixed API path onto the default tenant's
// /v1/d/default/... alias, exactly as a scoped client would.
func mirrorDefault(p string) string {
	path, query, _ := strings.Cut(p, "?")
	if rest, ok := strings.CutPrefix(path, "/v1/"); ok {
		path = "/v1/d/default/" + rest
	} else {
		path = "/v1/d/default" + path
	}
	if query != "" {
		path += "?" + query
	}
	return path
}

// TestDefaultTenantByteCompat pins the n=1 contract: every /v1/d/default/...
// route answers byte-identically — status, body, version and content-type
// headers — to its unprefixed twin, because both serve from the same
// instrumented handler over the same store.
func TestDefaultTenantByteCompat(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) { cfg.TenantRoot = t.TempDir() })

	for _, p := range []string{
		"/healthz",
		"/readyz",
		"/v1/risk/top?k=3",
		"/v1/risk/0",
		"/v1/condprob?anchor=HW",
		"/v1/correlations",
		"/v1/anomalies?k=2",
		"/v1/rates",
		"/v1/snapshot",
	} {
		direct, db := getRaw(t, ts.URL+p)
		alias, ab := getRaw(t, ts.URL+mirrorDefault(p))
		if direct.StatusCode != alias.StatusCode {
			t.Fatalf("%s: status %d vs aliased %d", p, direct.StatusCode, alias.StatusCode)
		}
		if !bytes.Equal(db, ab) {
			t.Errorf("%s: body diverges from default alias:\n%s\nvs\n%s", p, db, ab)
		}
		for _, h := range []string{"Content-Type", "X-Dataset-Version", "X-Partial"} {
			if direct.Header.Get(h) != alias.Header.Get(h) {
				t.Errorf("%s: header %s %q vs aliased %q", p, h, direct.Header.Get(h), alias.Header.Get(h))
			}
		}
	}

	// Writes through the alias land in the same store the unprefixed route
	// serves: risk on the plain route elevates.
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/d/default/events",
		`{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aliased ingest = %d; body: %s", resp.StatusCode, body)
	}
	var score scoreJSON
	getJSON(t, ts.URL+"/v1/risk/0", http.StatusOK, &score)
	if score.Risk <= score.Base {
		t.Fatalf("aliased ingest did not reach the default store: %+v", score)
	}
}

// TestDatasetAdminAPI drives the registry lifecycle over HTTP: token-gated
// create/list/delete, per-dataset auth on the data plane, and the admin
// token's bypass.
func TestDatasetAdminAPI(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) {
		cfg.TenantRoot = t.TempDir()
		cfg.AdminToken = "root-tok"
	})
	admin := map[string]string{adminTokenHeader: "root-tok"}

	// The admin API rejects unauthenticated and mis-authenticated callers.
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/datasets", `{"name":"alpha"}`, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated create = %d, want 401", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/datasets", "",
		map[string]string{adminTokenHeader: "wrong"}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token list = %d, want 401", resp.StatusCode)
	}

	row := createTenant(t, ts.URL, `{"name":"alpha","token":"s3cr3t","seed":7,"scale":0.01}`, admin)
	if row.Name != "alpha" || row.State != "open" || row.Systems == 0 || row.Shards < 1 {
		t.Fatalf("create row = %+v", row)
	}

	// Duplicate, reserved and malformed names are rejected with the right
	// statuses.
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/datasets", `{"name":"alpha"}`, admin); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/datasets", `{"name":"default"}`, admin); resp.StatusCode != http.StatusConflict {
		t.Fatalf("reserved create = %d, want 409", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/datasets", `{"name":"Not A Name!"}`, admin); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-name create = %d, want 400", resp.StatusCode)
	}

	var list struct {
		Datasets []datasetStatusJSON `json:"datasets"`
	}
	resp, b := doReq(t, http.MethodGet, ts.URL+"/v1/datasets", "", admin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d; body: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 2 || list.Datasets[0].Name != "default" || list.Datasets[1].Name != "alpha" {
		t.Fatalf("list rows = %+v", list.Datasets)
	}

	// Data plane: no token 401, wrong token 401, dataset token 200, admin
	// bypass 200, unknown and invalid names 404.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/d/alpha/risk/top?k=2", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless tenant query = %d, want 401", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/d/alpha/risk/top?k=2", "",
		map[string]string{datasetTokenHeader: "nope"}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token tenant query = %d, want 401", resp.StatusCode)
	}
	if resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/d/alpha/risk/top?k=2", "",
		map[string]string{datasetTokenHeader: "s3cr3t"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated tenant query = %d; body: %s", resp.StatusCode, body)
	}
	if resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/d/alpha/healthz", "", admin); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin-bypass tenant query = %d; body: %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/d/nosuch/healthz", "", admin); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset = %d, want 404", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/d/NOT..VALID/healthz", "", admin); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("invalid dataset name = %d, want 404", resp.StatusCode)
	}

	// Delete: gated, default protected, idempotent via 404 on repeat.
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/datasets/alpha", "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated delete = %d, want 401", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/datasets/default", "", admin); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("delete default = %d, want 400", resp.StatusCode)
	}
	if resp, body := doReq(t, http.MethodDelete, ts.URL+"/v1/datasets/alpha", "", admin); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d; body: %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/d/alpha/healthz", "", admin); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset still routable, want 404")
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/datasets/alpha", "", admin); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("repeat delete = %d, want 404", resp.StatusCode)
	}
}

// TestTenantQuotaEvents: a dataset created with max_events sheds ingestion
// with 429 once its lifetime budget is spent, while the default tenant
// stays unlimited.
func TestTenantQuotaEvents(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) { cfg.TenantRoot = t.TempDir() })
	createTenant(t, ts.URL, `{"name":"q","seed":5,"scale":0.01,"quota":{"max_events":3}}`, nil)

	ev := `{"events":[{"system":2,"node":0,"category":"HW","hw":"CPU"}]}`
	for i := 0; i < 3; i++ {
		resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/q/events", ev, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-quota ingest %d = %d; body: %s", i, resp.StatusCode, b)
		}
	}
	resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/q/events", ev, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota ingest = %d, want 429; body: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota 429 missing Retry-After")
	}
	if !strings.Contains(string(b), "quota") {
		t.Errorf("quota 429 body does not name the quota: %s", b)
	}

	// The default tenant has no quota and keeps accepting.
	if resp, b := postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("default ingest = %d; body: %s", resp.StatusCode, b)
	}

	// Per-dataset metrics rows carry the tenant's counters; the unlabeled
	// default rows are untouched by tenant traffic.
	metrics := string(fetchMetrics(t, ts))
	if !strings.Contains(metrics, `hpcserve_events_accepted_total{dataset="q"} 3`) {
		t.Errorf("metrics missing tenant event counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "\nhpcserve_events_accepted_total 1\n") {
		t.Errorf("metrics missing unlabeled default event counter:\n%s", metrics)
	}
}

// TestTenantReadOnlySiblingWritable: one tenant's ENOSPC latches only that
// tenant read-only; its siblings — and the default tenant — keep accepting
// writes, and per-tenant readiness reports the split.
func TestTenantReadOnlySiblingWritable(t *testing.T) {
	inj := iofault.NewInject(iofault.Disk, iofault.InjectSpec{})
	ts, _ := newTestServer(t, func(cfg *Config) {
		cfg.TenantRoot = t.TempDir()
		cfg.TenantWAL = wal.Options{FS: inj}
		cfg.SpaceProbeInterval = -1 // tenants probe on every gated attempt
	})
	createTenant(t, ts.URL, `{"name":"a","seed":3,"scale":0.01}`, nil)
	createTenant(t, ts.URL, `{"name":"b","seed":4,"scale":0.01}`, nil)

	ev := `{"events":[{"system":2,"node":0,"category":"HW","hw":"CPU"}]}`
	for _, name := range []string{"a", "b"} {
		if resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/"+name+"/events", ev, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy ingest into %s = %d; body: %s", name, resp.StatusCode, b)
		}
	}

	// The disk fills; only b writes while it is full, so only b latches.
	inj.SetDiskFull(true)
	resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/b/events", ev, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-full ingest into b = %d, want 503; body: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Read-Only") != "true" {
		t.Errorf("disk-full 503 missing X-Read-Only; got %q", resp.Header.Get("X-Read-Only"))
	}
	inj.SetDiskFull(false)

	// b's latch is sticky until its own next write probes: reads of its
	// readiness still say read-only, while sibling a and the default tenant
	// ingest normally.
	var ready map[string]any
	getJSON(t, ts.URL+"/v1/d/b/readyz", http.StatusOK, &ready)
	if ready["status"] != "read-only" {
		t.Fatalf("latched tenant readyz = %v, want read-only", ready["status"])
	}
	getJSON(t, ts.URL+"/v1/d/a/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Fatalf("sibling readyz = %v, want ready", ready["status"])
	}
	if resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/a/events", ev, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("sibling ingest while b latched = %d; body: %s", resp.StatusCode, b)
	}
	if resp, b := postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("default ingest while b latched = %d; body: %s", resp.StatusCode, b)
	}

	// The root readiness view stays ready (its own fleet is fine) and its
	// per-dataset section names exactly who is degraded.
	var rootReady struct {
		Status   string `json:"status"`
		Datasets map[string]struct {
			Status string `json:"status"`
		} `json:"datasets"`
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &rootReady)
	if rootReady.Status != "ready" {
		t.Fatalf("root readyz = %q, want ready", rootReady.Status)
	}
	if got := rootReady.Datasets["b"].Status; got != "read-only" {
		t.Errorf("root readyz datasets.b = %q, want read-only", got)
	}
	if got := rootReady.Datasets["a"].Status; got != "ready" {
		t.Errorf("root readyz datasets.a = %q, want ready", got)
	}

	// Space is back: b's next write probes, clears the latch, and lands.
	if resp, b := doReq(t, http.MethodPost, ts.URL+"/v1/d/b/events", ev, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest into b = %d; body: %s", resp.StatusCode, b)
	}
	getJSON(t, ts.URL+"/v1/d/b/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Errorf("recovered tenant readyz = %v, want ready", ready["status"])
	}
}

// normalizeJSON round-trips bytes through any so equality ignores
// indentation differences between nested and standalone rendering.
func normalizeJSON(t *testing.T, b []byte) any {
	t.Helper()
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("bad JSON: %v; body: %s", err, b)
	}
	return v
}

// TestCompareCondProbDifferential: each side of /v1/compare/condprob is
// exactly what querying that dataset alone returns — same numbers from the
// same cache keys — and the pinned versions are surfaced per dataset.
func TestCompareCondProbDifferential(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) { cfg.TenantRoot = t.TempDir() })
	createTenant(t, ts.URL, `{"name":"a","seed":3,"scale":0.02}`, nil)
	createTenant(t, ts.URL, `{"name":"b","seed":4,"scale":0.02}`, nil)

	const q = "anchor=HW&window=week"
	resp, body := getRaw(t, ts.URL+"/v1/compare/condprob?datasets=a,b&"+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare = %d; body: %s", resp.StatusCode, body)
	}
	var cmp struct {
		Datasets []string                   `json:"datasets"`
		Results  map[string]json.RawMessage `json:"results"`
		Diff     []condProbDiffJSON         `json:"diff"`
	}
	if err := json.Unmarshal(body, &cmp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmp.Datasets, []string{"a", "b"}) {
		t.Fatalf("datasets = %v", cmp.Datasets)
	}
	versions := map[string]string{}
	for _, name := range cmp.Datasets {
		direct, db := getRaw(t, ts.URL+"/v1/d/"+name+"/condprob?"+q)
		if direct.StatusCode != http.StatusOK {
			t.Fatalf("direct %s = %d; body: %s", name, direct.StatusCode, db)
		}
		versions[name] = direct.Header.Get("X-Dataset-Version")
		if got, want := normalizeJSON(t, cmp.Results[name]), normalizeJSON(t, db); !reflect.DeepEqual(got, want) {
			t.Errorf("compare side %s differs from standalone answer:\n%s\nvs\n%s", name, cmp.Results[name], db)
		}
	}
	wantHeader := fmt.Sprintf("a:%s,b:%s", versions["a"], versions["b"])
	if got := resp.Header.Get("X-Compare-Versions"); got != wantHeader {
		t.Errorf("X-Compare-Versions = %q, want %q", got, wantHeader)
	}
	if len(cmp.Diff) != 1 || cmp.Diff[0].Dataset != "b" || cmp.Diff[0].Baseline != "a" {
		t.Fatalf("diff rows = %+v", cmp.Diff)
	}

	// The default tenant participates in comparisons under its reserved
	// name, against the unprefixed endpoint's answer.
	resp, body = getRaw(t, ts.URL+"/v1/compare/condprob?datasets=default,a&"+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare with default = %d; body: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cmp); err != nil {
		t.Fatal(err)
	}
	_, db := getRaw(t, ts.URL+"/v1/condprob?"+q)
	if got, want := normalizeJSON(t, cmp.Results["default"]), normalizeJSON(t, db); !reflect.DeepEqual(got, want) {
		t.Errorf("compare side default differs from /v1/condprob:\n%s\nvs\n%s", cmp.Results["default"], db)
	}

	// Malformed dataset lists are rejected before any tenant work.
	for _, bad := range []string{
		"datasets=a",
		"datasets=a,a",
		"datasets=a&datasets=b",
		"datasets=a,b,c,d,e,f,g,h,i",
	} {
		if resp, _ := getRaw(t, ts.URL+"/v1/compare/condprob?"+bad+"&"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("compare %q = %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := getRaw(t, ts.URL+"/v1/compare/condprob?datasets=a,nosuch&"+q); resp.StatusCode != http.StatusNotFound {
		t.Errorf("compare with unknown dataset = %d, want 404", resp.StatusCode)
	}
}

// TestCompareRatesDifferential: same bit-identity contract for the rate
// tables, plus the shape of the baseline diff.
func TestCompareRatesDifferential(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) { cfg.TenantRoot = t.TempDir() })
	createTenant(t, ts.URL, `{"name":"a","seed":3,"scale":0.02}`, nil)
	createTenant(t, ts.URL, `{"name":"b","seed":4,"scale":0.02}`, nil)

	const q = "window=month"
	resp, body := getRaw(t, ts.URL+"/v1/compare/rates?datasets=a,b&"+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare rates = %d; body: %s", resp.StatusCode, body)
	}
	var cmp struct {
		Datasets []string                   `json:"datasets"`
		Results  map[string]json.RawMessage `json:"results"`
		Diff     []ratesDiffJSON            `json:"diff"`
	}
	if err := json.Unmarshal(body, &cmp); err != nil {
		t.Fatal(err)
	}
	typed := map[string]ratesJSON{}
	for _, name := range []string{"a", "b"} {
		direct, db := getRaw(t, ts.URL+"/v1/d/"+name+"/rates?"+q)
		if direct.StatusCode != http.StatusOK {
			t.Fatalf("direct rates %s = %d; body: %s", name, direct.StatusCode, db)
		}
		if got, want := normalizeJSON(t, cmp.Results[name]), normalizeJSON(t, db); !reflect.DeepEqual(got, want) {
			t.Errorf("rates side %s differs from standalone answer:\n%s\nvs\n%s", name, cmp.Results[name], db)
		}
		var r ratesJSON
		if err := json.Unmarshal(db, &r); err != nil {
			t.Fatal(err)
		}
		typed[name] = r
	}
	if len(cmp.Diff) != 1 {
		t.Fatalf("diff rows = %+v", cmp.Diff)
	}
	d := cmp.Diff[0]
	if d.Dataset != "b" || d.Baseline != "a" {
		t.Fatalf("diff identity = %+v", d)
	}
	if want := safeRatio(typed["b"].Overall.PerNodeYear, typed["a"].Overall.PerNodeYear); d.OverallRatio != want {
		t.Errorf("overall ratio = %v, want %v", d.OverallRatio, want)
	}
	if len(d.Categories) != len(trace.Categories) || len(d.Lift) != len(trace.Categories) {
		t.Fatalf("diff table sizes = %d cats, %d lift, want %d", len(d.Categories), len(d.Lift), len(trace.Categories))
	}
	for _, row := range d.Categories {
		if want := safeRatio(row.OtherRate, row.BaseRate); row.Ratio != want {
			t.Errorf("category %s ratio = %v, want %v", row.Category, row.Ratio, want)
		}
	}
	for i := 1; i < len(d.Categories); i++ {
		if ratioSortKey(d.Categories[i-1].Ratio) < ratioSortKey(d.Categories[i].Ratio) {
			t.Errorf("category diff not sorted by divergence at %d: %+v", i, d.Categories)
		}
	}
}

// TestTwoTenantKillOneShard: a dead shard in the default tenant's fabric
// degrades only the default tenant — scatter answers turn partial, strict
// comparative bodies refuse — while a named tenant's fabric keeps answering
// completely.
func TestTwoTenantKillOneShard(t *testing.T) {
	clock := &fakeClock{t: day(100)}
	cfg := Config{
		Dataset:    fleetDS(),
		Window:     trace.Day,
		Now:        clock.Now,
		Shards:     3,
		TenantRoot: t.TempDir(),
		Logf:       func(string, ...any) {},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createTenant(t, ts.URL, `{"name":"b","seed":4,"scale":0.01}`, nil)

	victim := s.fabric.owner[1]
	if err := s.KillShard(victim); err != nil {
		t.Fatal(err)
	}

	// Default tenant: cross-system risk degrades to a partial answer and
	// the strict rate tables refuse outright.
	resp, body := getRaw(t, ts.URL+"/v1/risk/top?k=8")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "true" {
		t.Fatalf("degraded risk/top = %d, X-Partial %q; body: %s", resp.StatusCode, resp.Header.Get("X-Partial"), body)
	}
	if resp, _ := getRaw(t, ts.URL+"/v1/rates"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("strict rates over dead shard = %d, want 503", resp.StatusCode)
	}
	if resp, _ := getRaw(t, ts.URL+"/v1/compare/rates?datasets=default,b"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compare spanning dead shard = %d, want 503", resp.StatusCode)
	}

	// The named tenant's fabric is untouched: full answers, no partial
	// marker, rates and readiness intact.
	resp, body = getRaw(t, ts.URL+"/v1/d/b/risk/top?k=4")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Partial") != "" {
		t.Fatalf("tenant risk/top = %d, X-Partial %q; body: %s", resp.StatusCode, resp.Header.Get("X-Partial"), body)
	}
	if resp, body := getRaw(t, ts.URL+"/v1/d/b/rates"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant rates = %d; body: %s", resp.StatusCode, body)
	}
	var ready map[string]any
	getJSON(t, ts.URL+"/v1/d/b/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Fatalf("tenant readyz = %v, want ready", ready["status"])
	}
	// The root's own readiness reports the degradation.
	if resp, _ := getRaw(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("root readyz with dead shard = %d, want 503", resp.StatusCode)
	}
}

// TestTenantLifecycleConcurrent hammers create/query/delete from many
// goroutines; run under -race it pins the registry's server-side locking
// discipline (acquisitions vs drain vs dispatch).
func TestTenantLifecycleConcurrent(t *testing.T) {
	ts, _ := newTestServer(t, func(cfg *Config) { cfg.TenantRoot = t.TempDir() })

	const tenants = 4
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			createTenant(t, ts.URL, fmt.Sprintf(`{"name":%q,"seed":%d,"scale":0.01}`, name, i+1), nil)
			for j := 0; j < 5; j++ {
				resp, b := doReq(t, http.MethodGet, ts.URL+"/v1/d/"+name+"/risk/top?k=2", "", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tenant %s query = %d; body: %s", name, resp.StatusCode, b)
					return
				}
			}
			if i%2 == 0 {
				resp, b := doReq(t, http.MethodDelete, ts.URL+"/v1/datasets/"+name, "", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("tenant %s delete = %d; body: %s", name, resp.StatusCode, b)
				}
			}
		}(i)
	}
	// Concurrent readers of the shared surfaces: list, metrics, readiness.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				doReq(t, http.MethodGet, ts.URL+"/v1/datasets", "", nil)
				doReq(t, http.MethodGet, ts.URL+"/readyz", "", nil)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	var list struct {
		Datasets []datasetStatusJSON `json:"datasets"`
	}
	resp, b := doReq(t, http.MethodGet, ts.URL+"/v1/datasets", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final list = %d; body: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &list); err != nil {
		t.Fatal(err)
	}
	want := 1 + tenants/2 // default plus the odd-numbered survivors
	if len(list.Datasets) != want {
		t.Fatalf("surviving datasets = %+v, want %d rows", list.Datasets, want)
	}
}
