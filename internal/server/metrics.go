package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is a tiny dependency-free Prometheus-text metrics registry: per
// route/status request counters, per-route latency sums, cache and
// singleflight counters, and engine gauges supplied at render time.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]uint64 // route+status -> count
	latency  map[string]*latencyAgg

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	shared      atomic.Uint64 // singleflight followers served by a leader's computation
	eventsIn    atomic.Uint64 // events accepted via /v1/events
	eventsBad   atomic.Uint64 // events rejected via /v1/events
	shed        atomic.Uint64 // requests rejected by admission control
	degraded    atomic.Uint64 // condprob requests served degraded (circuit open)
	idemReplays atomic.Uint64 // POST /v1/events replays served from the idempotency cache
	partial     atomic.Uint64 // scatter-gather responses answered with X-Partial: true
	// readOnlyRejects counts event POSTs shed at the read-only gate (the
	// in-batch ENOSPC fault itself is counted by the fabric's walAppendErrs).
	readOnlyRejects atomic.Uint64
}

type routeCode struct {
	route string
	code  int
}

type latencyAgg struct {
	count uint64
	sum   time.Duration
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]uint64),
		latency:  make(map[string]*latencyAgg),
	}
}

// observe records one completed request.
func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	agg := m.latency[route]
	if agg == nil {
		agg = &latencyAgg{}
		m.latency[route] = agg
	}
	agg.count++
	agg.sum += d
}

// hitRate returns the condprob cache hit fraction in [0,1] (0 before any
// lookup).
func (m *metrics) hitRate() float64 {
	h, miss := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// admissionGauge is one route's live admission-control state.
type admissionGauge struct {
	inflight int64
	queued   int64
	peak     int64
	shed     uint64
}

// shardGauge is one shard's live supervision state.
type shardGauge struct {
	state      string
	healthy    bool
	version    uint64
	lag        uint64 // WAL records the standby trails the leader by
	failovers  uint64
	hasStandby bool
	diskFull   bool // shard is in read-only mode (WAL disk full)
}

// gauges carries point-in-time values the registry does not own.
type gauges struct {
	engineLag      time.Duration
	activeEvents   int
	observedEvents uint64
	cacheEntries   int
	breakerOpen    bool
	breakerTrips   uint64
	walRecords     uint64
	walSegments    int
	readOnly       bool   // any shard in read-only mode
	readOnlyEntry  uint64 // read-only-mode entries since start
	walAppendErrs  uint64 // WAL append/sync/snapshot failures since start
	datasetVersion uint64
	datasetEvents  int
	storeAppends   uint64
	storeRebuilds  uint64
	shards         []shardGauge
	admission      map[string]admissionGauge
}

// metricsRow is one dataset's slice of the exposition: its counters and
// point-in-time gauges, labeled with the dataset name. The default tenant
// renders with ds == "" — no dataset label, byte-identical to the
// single-tenant server's output — so existing dashboards keep working.
type metricsRow struct {
	ds string
	m  *metrics
	g  gauges
}

// dsLabel combines the optional dataset label with a row's other labels
// into a rendered label set ("" when there are none).
func dsLabel(ds, rest string) string {
	switch {
	case ds == "" && rest == "":
		return ""
	case ds == "":
		return "{" + rest + "}"
	case rest == "":
		return fmt.Sprintf("{dataset=%q}", ds)
	default:
		return fmt.Sprintf("{dataset=%q,%s}", ds, rest)
	}
}

// writeMetricsRows renders every dataset's metrics in Prometheus text
// exposition format with deterministic line order: each family's HELP/TYPE
// header once, then one line (or line group) per dataset row.
func writeMetricsRows(w io.Writer, rows []metricsRow) {
	family := func(name, help, typ string, emit func(r metricsRow)) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		for _, r := range rows {
			emit(r)
		}
	}
	simple := func(name, help, typ string, val func(r metricsRow) string) {
		family(name, help, typ, func(r metricsRow) {
			fmt.Fprintf(w, "%s%s %s\n", name, dsLabel(r.ds, ""), val(r))
		})
	}
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	d := func(v int) string { return fmt.Sprintf("%d", v) }
	f := func(v float64) string { return fmt.Sprintf("%g", v) }

	family("hpcserve_requests_total", "Completed HTTP requests by route and status code.", "counter", func(r metricsRow) {
		r.m.mu.Lock()
		reqKeys := make([]routeCode, 0, len(r.m.requests))
		for k := range r.m.requests {
			reqKeys = append(reqKeys, k)
		}
		sort.Slice(reqKeys, func(i, j int) bool {
			if reqKeys[i].route != reqKeys[j].route {
				return reqKeys[i].route < reqKeys[j].route
			}
			return reqKeys[i].code < reqKeys[j].code
		})
		for _, k := range reqKeys {
			fmt.Fprintf(w, "hpcserve_requests_total%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("route=%q,code=\"%d\"", k.route, k.code)), r.m.requests[k])
		}
		r.m.mu.Unlock()
	})
	family("hpcserve_request_seconds", "Cumulative request latency by route.", "summary", func(r metricsRow) {
		r.m.mu.Lock()
		latKeys := make([]string, 0, len(r.m.latency))
		for k := range r.m.latency {
			latKeys = append(latKeys, k)
		}
		sort.Strings(latKeys)
		for _, k := range latKeys {
			agg := r.m.latency[k]
			lbl := dsLabel(r.ds, fmt.Sprintf("route=%q", k))
			fmt.Fprintf(w, "hpcserve_request_seconds_sum%s %g\n", lbl, agg.sum.Seconds())
			fmt.Fprintf(w, "hpcserve_request_seconds_count%s %d\n", lbl, agg.count)
		}
		r.m.mu.Unlock()
	})

	simple("hpcserve_condprob_cache_hits_total", "Conditional-probability cache hits.", "counter",
		func(r metricsRow) string { return u(r.m.cacheHits.Load()) })
	simple("hpcserve_condprob_cache_misses_total", "Conditional-probability cache misses.", "counter",
		func(r metricsRow) string { return u(r.m.cacheMisses.Load()) })
	simple("hpcserve_condprob_cache_hit_rate", "Cache hit fraction since start.", "gauge",
		func(r metricsRow) string { return f(r.m.hitRate()) })
	simple("hpcserve_condprob_cache_entries", "Cached conditional-probability results.", "gauge",
		func(r metricsRow) string { return d(r.g.cacheEntries) })
	simple("hpcserve_condprob_shared_total", "Requests served by another request's in-flight computation.", "counter",
		func(r metricsRow) string { return u(r.m.shared.Load()) })
	simple("hpcserve_events_accepted_total", "Events accepted by POST /v1/events.", "counter",
		func(r metricsRow) string { return u(r.m.eventsIn.Load()) })
	simple("hpcserve_events_rejected_total", "Events rejected by POST /v1/events.", "counter",
		func(r metricsRow) string { return u(r.m.eventsBad.Load()) })
	simple("hpcserve_engine_observed_events_total", "Events the risk engine has accepted since start.", "counter",
		func(r metricsRow) string { return u(r.g.observedEvents) })
	simple("hpcserve_engine_active_events", "Events currently inside the engine's sliding windows.", "gauge",
		func(r metricsRow) string { return d(r.g.activeEvents) })
	simple("hpcserve_engine_lag_seconds", "Time since the newest event the engine has seen.", "gauge",
		func(r metricsRow) string { return f(r.g.engineLag.Seconds()) })
	simple("hpcserve_shed_total", "Requests rejected by admission control.", "counter",
		func(r metricsRow) string { return u(r.m.shed.Load()) })
	simple("hpcserve_degraded_total", "Condprob requests answered degraded while the compute circuit was open.", "counter",
		func(r metricsRow) string { return u(r.m.degraded.Load()) })
	simple("hpcserve_idempotent_replays_total", "Event POSTs replayed from the idempotency cache.", "counter",
		func(r metricsRow) string { return u(r.m.idemReplays.Load()) })
	simple("hpcserve_breaker_open", "Whether the condprob compute circuit is open.", "gauge",
		func(r metricsRow) string { return d(b2i(r.g.breakerOpen)) })
	simple("hpcserve_breaker_trips_total", "Closed-to-open transitions of the compute circuit.", "counter",
		func(r metricsRow) string { return u(r.g.breakerTrips) })
	simple("hpcserve_wal_records_total", "Records ever appended to the write-ahead log.", "counter",
		func(r metricsRow) string { return u(r.g.walRecords) })
	simple("hpcserve_wal_segments", "Live write-ahead-log segment files.", "gauge",
		func(r metricsRow) string { return d(r.g.walSegments) })
	simple("hpcserve_read_only", "Whether any shard is rejecting writes because its WAL disk is full.", "gauge",
		func(r metricsRow) string { return d(b2i(r.g.readOnly)) })
	simple("hpcserve_read_only_entries_total", "Times a shard entered read-only mode (WAL disk full).", "counter",
		func(r metricsRow) string { return u(r.g.readOnlyEntry) })
	simple("hpcserve_read_only_rejects_total", "Event POSTs rejected at the read-only gate.", "counter",
		func(r metricsRow) string { return u(r.m.readOnlyRejects.Load()) })
	simple("hpcserve_wal_append_errors_total", "WAL append, sync or snapshot failures.", "counter",
		func(r metricsRow) string { return u(r.g.walAppendErrs) })
	simple("hpcserve_dataset_version", "Current version of the dataset store.", "gauge",
		func(r metricsRow) string { return u(r.g.datasetVersion) })
	simple("hpcserve_dataset_events", "Failure events in the current dataset snapshot.", "gauge",
		func(r metricsRow) string { return d(r.g.datasetEvents) })
	simple("hpcserve_store_appends_total", "Batches applied to the dataset store since start.", "counter",
		func(r metricsRow) string { return u(r.g.storeAppends) })
	simple("hpcserve_store_rebuilds_total", "Store appends that fell back to a full index rebuild.", "counter",
		func(r metricsRow) string { return u(r.g.storeRebuilds) })
	simple("hpcserve_partial_responses_total", "Scatter-gather responses served with X-Partial: true (a shard was down or slow).", "counter",
		func(r metricsRow) string { return u(r.m.partial.Load()) })

	family("hpcserve_shard_healthy", "Whether the shard is Ready (1) or not (0).", "gauge", func(r metricsRow) {
		for i, sg := range r.g.shards {
			fmt.Fprintf(w, "hpcserve_shard_healthy%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("shard=\"%d\",state=%q", i, sg.state)), b2i(sg.healthy))
		}
	})
	family("hpcserve_shard_dataset_version", "Current dataset-store version of the shard.", "gauge", func(r metricsRow) {
		for i, sg := range r.g.shards {
			fmt.Fprintf(w, "hpcserve_shard_dataset_version%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("shard=\"%d\"", i)), sg.version)
		}
	})
	family("hpcserve_shard_failovers_total", "Standby promotions the shard has been through.", "counter", func(r metricsRow) {
		for i, sg := range r.g.shards {
			fmt.Fprintf(w, "hpcserve_shard_failovers_total%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("shard=\"%d\"", i)), sg.failovers)
		}
	})
	family("hpcserve_wal_replication_lag_records", "WAL records the shard's standby trails its leader by (0 with no standby).", "gauge", func(r metricsRow) {
		for i, sg := range r.g.shards {
			fmt.Fprintf(w, "hpcserve_wal_replication_lag_records%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("shard=\"%d\"", i)), sg.lag)
		}
	})
	family("hpcserve_shard_disk_full", "Whether the shard's WAL disk is full (shard is read-only).", "gauge", func(r metricsRow) {
		for i, sg := range r.g.shards {
			fmt.Fprintf(w, "hpcserve_shard_disk_full%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("shard=\"%d\"", i)), b2i(sg.diskFull))
		}
	})

	admRoutesOf := func(r metricsRow) []string {
		routes := make([]string, 0, len(r.g.admission))
		for route := range r.g.admission {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		return routes
	}
	family("hpcserve_admission_inflight", "Handlers currently running, by route.", "gauge", func(r metricsRow) {
		for _, route := range admRoutesOf(r) {
			fmt.Fprintf(w, "hpcserve_admission_inflight%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("route=%q", route)), r.g.admission[route].inflight)
		}
	})
	family("hpcserve_admission_queued", "Requests waiting for a handler slot, by route.", "gauge", func(r metricsRow) {
		for _, route := range admRoutesOf(r) {
			fmt.Fprintf(w, "hpcserve_admission_queued%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("route=%q", route)), r.g.admission[route].queued)
		}
	})
	family("hpcserve_admission_peak_inflight", "High-water mark of concurrent handlers, by route.", "gauge", func(r metricsRow) {
		for _, route := range admRoutesOf(r) {
			fmt.Fprintf(w, "hpcserve_admission_peak_inflight%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("route=%q", route)), r.g.admission[route].peak)
		}
	})
	family("hpcserve_admission_shed_total", "Requests shed at admission, by route.", "counter", func(r metricsRow) {
		for _, route := range admRoutesOf(r) {
			fmt.Fprintf(w, "hpcserve_admission_shed_total%s %d\n",
				dsLabel(r.ds, fmt.Sprintf("route=%q", route)), r.g.admission[route].shed)
		}
	})
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
