package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is a tiny dependency-free Prometheus-text metrics registry: per
// route/status request counters, per-route latency sums, cache and
// singleflight counters, and engine gauges supplied at render time.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]uint64 // route+status -> count
	latency  map[string]*latencyAgg

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	shared      atomic.Uint64 // singleflight followers served by a leader's computation
	eventsIn    atomic.Uint64 // events accepted via /v1/events
	eventsBad   atomic.Uint64 // events rejected via /v1/events
	shed        atomic.Uint64 // requests rejected by admission control
	degraded    atomic.Uint64 // condprob requests served degraded (circuit open)
	idemReplays atomic.Uint64 // POST /v1/events replays served from the idempotency cache
	partial     atomic.Uint64 // scatter-gather responses answered with X-Partial: true
	// readOnlyRejects counts event POSTs shed at the read-only gate (the
	// in-batch ENOSPC fault itself is counted by the fabric's walAppendErrs).
	readOnlyRejects atomic.Uint64
}

type routeCode struct {
	route string
	code  int
}

type latencyAgg struct {
	count uint64
	sum   time.Duration
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]uint64),
		latency:  make(map[string]*latencyAgg),
	}
}

// observe records one completed request.
func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	agg := m.latency[route]
	if agg == nil {
		agg = &latencyAgg{}
		m.latency[route] = agg
	}
	agg.count++
	agg.sum += d
}

// hitRate returns the condprob cache hit fraction in [0,1] (0 before any
// lookup).
func (m *metrics) hitRate() float64 {
	h, miss := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// admissionGauge is one route's live admission-control state.
type admissionGauge struct {
	inflight int64
	queued   int64
	peak     int64
	shed     uint64
}

// shardGauge is one shard's live supervision state.
type shardGauge struct {
	state      string
	healthy    bool
	version    uint64
	lag        uint64 // WAL records the standby trails the leader by
	failovers  uint64
	hasStandby bool
	diskFull   bool // shard is in read-only mode (WAL disk full)
}

// gauges carries point-in-time values the registry does not own.
type gauges struct {
	engineLag      time.Duration
	activeEvents   int
	observedEvents uint64
	cacheEntries   int
	breakerOpen    bool
	breakerTrips   uint64
	walRecords     uint64
	walSegments    int
	readOnly       bool   // any shard in read-only mode
	readOnlyEntry  uint64 // read-only-mode entries since start
	walAppendErrs  uint64 // WAL append/sync/snapshot failures since start
	datasetVersion uint64
	datasetEvents  int
	storeAppends   uint64
	storeRebuilds  uint64
	shards         []shardGauge
	admission      map[string]admissionGauge
}

// write renders the registry in Prometheus text exposition format, with
// deterministic line order.
func (m *metrics) write(w io.Writer, g gauges) {
	m.mu.Lock()
	reqKeys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)

	fmt.Fprintln(w, "# HELP hpcserve_requests_total Completed HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE hpcserve_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "hpcserve_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP hpcserve_request_seconds Cumulative request latency by route.")
	fmt.Fprintln(w, "# TYPE hpcserve_request_seconds summary")
	for _, k := range latKeys {
		agg := m.latency[k]
		fmt.Fprintf(w, "hpcserve_request_seconds_sum{route=%q} %g\n", k, agg.sum.Seconds())
		fmt.Fprintf(w, "hpcserve_request_seconds_count{route=%q} %d\n", k, agg.count)
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP hpcserve_condprob_cache_hits_total Conditional-probability cache hits.")
	fmt.Fprintln(w, "# TYPE hpcserve_condprob_cache_hits_total counter")
	fmt.Fprintf(w, "hpcserve_condprob_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# HELP hpcserve_condprob_cache_misses_total Conditional-probability cache misses.")
	fmt.Fprintln(w, "# TYPE hpcserve_condprob_cache_misses_total counter")
	fmt.Fprintf(w, "hpcserve_condprob_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# HELP hpcserve_condprob_cache_hit_rate Cache hit fraction since start.")
	fmt.Fprintln(w, "# TYPE hpcserve_condprob_cache_hit_rate gauge")
	fmt.Fprintf(w, "hpcserve_condprob_cache_hit_rate %g\n", m.hitRate())
	fmt.Fprintln(w, "# HELP hpcserve_condprob_cache_entries Cached conditional-probability results.")
	fmt.Fprintln(w, "# TYPE hpcserve_condprob_cache_entries gauge")
	fmt.Fprintf(w, "hpcserve_condprob_cache_entries %d\n", g.cacheEntries)
	fmt.Fprintln(w, "# HELP hpcserve_condprob_shared_total Requests served by another request's in-flight computation.")
	fmt.Fprintln(w, "# TYPE hpcserve_condprob_shared_total counter")
	fmt.Fprintf(w, "hpcserve_condprob_shared_total %d\n", m.shared.Load())
	fmt.Fprintln(w, "# HELP hpcserve_events_accepted_total Events accepted by POST /v1/events.")
	fmt.Fprintln(w, "# TYPE hpcserve_events_accepted_total counter")
	fmt.Fprintf(w, "hpcserve_events_accepted_total %d\n", m.eventsIn.Load())
	fmt.Fprintln(w, "# HELP hpcserve_events_rejected_total Events rejected by POST /v1/events.")
	fmt.Fprintln(w, "# TYPE hpcserve_events_rejected_total counter")
	fmt.Fprintf(w, "hpcserve_events_rejected_total %d\n", m.eventsBad.Load())
	fmt.Fprintln(w, "# HELP hpcserve_engine_observed_events_total Events the risk engine has accepted since start.")
	fmt.Fprintln(w, "# TYPE hpcserve_engine_observed_events_total counter")
	fmt.Fprintf(w, "hpcserve_engine_observed_events_total %d\n", g.observedEvents)
	fmt.Fprintln(w, "# HELP hpcserve_engine_active_events Events currently inside the engine's sliding windows.")
	fmt.Fprintln(w, "# TYPE hpcserve_engine_active_events gauge")
	fmt.Fprintf(w, "hpcserve_engine_active_events %d\n", g.activeEvents)
	fmt.Fprintln(w, "# HELP hpcserve_engine_lag_seconds Time since the newest event the engine has seen.")
	fmt.Fprintln(w, "# TYPE hpcserve_engine_lag_seconds gauge")
	fmt.Fprintf(w, "hpcserve_engine_lag_seconds %g\n", g.engineLag.Seconds())
	fmt.Fprintln(w, "# HELP hpcserve_shed_total Requests rejected by admission control.")
	fmt.Fprintln(w, "# TYPE hpcserve_shed_total counter")
	fmt.Fprintf(w, "hpcserve_shed_total %d\n", m.shed.Load())
	fmt.Fprintln(w, "# HELP hpcserve_degraded_total Condprob requests answered degraded while the compute circuit was open.")
	fmt.Fprintln(w, "# TYPE hpcserve_degraded_total counter")
	fmt.Fprintf(w, "hpcserve_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintln(w, "# HELP hpcserve_idempotent_replays_total Event POSTs replayed from the idempotency cache.")
	fmt.Fprintln(w, "# TYPE hpcserve_idempotent_replays_total counter")
	fmt.Fprintf(w, "hpcserve_idempotent_replays_total %d\n", m.idemReplays.Load())
	fmt.Fprintln(w, "# HELP hpcserve_breaker_open Whether the condprob compute circuit is open.")
	fmt.Fprintln(w, "# TYPE hpcserve_breaker_open gauge")
	fmt.Fprintf(w, "hpcserve_breaker_open %d\n", b2i(g.breakerOpen))
	fmt.Fprintln(w, "# HELP hpcserve_breaker_trips_total Closed-to-open transitions of the compute circuit.")
	fmt.Fprintln(w, "# TYPE hpcserve_breaker_trips_total counter")
	fmt.Fprintf(w, "hpcserve_breaker_trips_total %d\n", g.breakerTrips)
	fmt.Fprintln(w, "# HELP hpcserve_wal_records_total Records ever appended to the write-ahead log.")
	fmt.Fprintln(w, "# TYPE hpcserve_wal_records_total counter")
	fmt.Fprintf(w, "hpcserve_wal_records_total %d\n", g.walRecords)
	fmt.Fprintln(w, "# HELP hpcserve_wal_segments Live write-ahead-log segment files.")
	fmt.Fprintln(w, "# TYPE hpcserve_wal_segments gauge")
	fmt.Fprintf(w, "hpcserve_wal_segments %d\n", g.walSegments)
	fmt.Fprintln(w, "# HELP hpcserve_read_only Whether any shard is rejecting writes because its WAL disk is full.")
	fmt.Fprintln(w, "# TYPE hpcserve_read_only gauge")
	fmt.Fprintf(w, "hpcserve_read_only %d\n", b2i(g.readOnly))
	fmt.Fprintln(w, "# HELP hpcserve_read_only_entries_total Times a shard entered read-only mode (WAL disk full).")
	fmt.Fprintln(w, "# TYPE hpcserve_read_only_entries_total counter")
	fmt.Fprintf(w, "hpcserve_read_only_entries_total %d\n", g.readOnlyEntry)
	fmt.Fprintln(w, "# HELP hpcserve_read_only_rejects_total Event POSTs rejected at the read-only gate.")
	fmt.Fprintln(w, "# TYPE hpcserve_read_only_rejects_total counter")
	fmt.Fprintf(w, "hpcserve_read_only_rejects_total %d\n", m.readOnlyRejects.Load())
	fmt.Fprintln(w, "# HELP hpcserve_wal_append_errors_total WAL append, sync or snapshot failures.")
	fmt.Fprintln(w, "# TYPE hpcserve_wal_append_errors_total counter")
	fmt.Fprintf(w, "hpcserve_wal_append_errors_total %d\n", g.walAppendErrs)
	fmt.Fprintln(w, "# HELP hpcserve_dataset_version Current version of the dataset store.")
	fmt.Fprintln(w, "# TYPE hpcserve_dataset_version gauge")
	fmt.Fprintf(w, "hpcserve_dataset_version %d\n", g.datasetVersion)
	fmt.Fprintln(w, "# HELP hpcserve_dataset_events Failure events in the current dataset snapshot.")
	fmt.Fprintln(w, "# TYPE hpcserve_dataset_events gauge")
	fmt.Fprintf(w, "hpcserve_dataset_events %d\n", g.datasetEvents)
	fmt.Fprintln(w, "# HELP hpcserve_store_appends_total Batches applied to the dataset store since start.")
	fmt.Fprintln(w, "# TYPE hpcserve_store_appends_total counter")
	fmt.Fprintf(w, "hpcserve_store_appends_total %d\n", g.storeAppends)
	fmt.Fprintln(w, "# HELP hpcserve_store_rebuilds_total Store appends that fell back to a full index rebuild.")
	fmt.Fprintln(w, "# TYPE hpcserve_store_rebuilds_total counter")
	fmt.Fprintf(w, "hpcserve_store_rebuilds_total %d\n", g.storeRebuilds)
	fmt.Fprintln(w, "# HELP hpcserve_partial_responses_total Scatter-gather responses served with X-Partial: true (a shard was down or slow).")
	fmt.Fprintln(w, "# TYPE hpcserve_partial_responses_total counter")
	fmt.Fprintf(w, "hpcserve_partial_responses_total %d\n", m.partial.Load())
	fmt.Fprintln(w, "# HELP hpcserve_shard_healthy Whether the shard is Ready (1) or not (0).")
	fmt.Fprintln(w, "# TYPE hpcserve_shard_healthy gauge")
	for i, sg := range g.shards {
		fmt.Fprintf(w, "hpcserve_shard_healthy{shard=\"%d\",state=%q} %d\n", i, sg.state, b2i(sg.healthy))
	}
	fmt.Fprintln(w, "# HELP hpcserve_shard_dataset_version Current dataset-store version of the shard.")
	fmt.Fprintln(w, "# TYPE hpcserve_shard_dataset_version gauge")
	for i, sg := range g.shards {
		fmt.Fprintf(w, "hpcserve_shard_dataset_version{shard=\"%d\"} %d\n", i, sg.version)
	}
	fmt.Fprintln(w, "# HELP hpcserve_shard_failovers_total Standby promotions the shard has been through.")
	fmt.Fprintln(w, "# TYPE hpcserve_shard_failovers_total counter")
	for i, sg := range g.shards {
		fmt.Fprintf(w, "hpcserve_shard_failovers_total{shard=\"%d\"} %d\n", i, sg.failovers)
	}
	fmt.Fprintln(w, "# HELP hpcserve_wal_replication_lag_records WAL records the shard's standby trails its leader by (0 with no standby).")
	fmt.Fprintln(w, "# TYPE hpcserve_wal_replication_lag_records gauge")
	for i, sg := range g.shards {
		fmt.Fprintf(w, "hpcserve_wal_replication_lag_records{shard=\"%d\"} %d\n", i, sg.lag)
	}
	fmt.Fprintln(w, "# HELP hpcserve_shard_disk_full Whether the shard's WAL disk is full (shard is read-only).")
	fmt.Fprintln(w, "# TYPE hpcserve_shard_disk_full gauge")
	for i, sg := range g.shards {
		fmt.Fprintf(w, "hpcserve_shard_disk_full{shard=\"%d\"} %d\n", i, b2i(sg.diskFull))
	}

	admRoutes := make([]string, 0, len(g.admission))
	for route := range g.admission {
		admRoutes = append(admRoutes, route)
	}
	sort.Strings(admRoutes)
	fmt.Fprintln(w, "# HELP hpcserve_admission_inflight Handlers currently running, by route.")
	fmt.Fprintln(w, "# TYPE hpcserve_admission_inflight gauge")
	for _, route := range admRoutes {
		fmt.Fprintf(w, "hpcserve_admission_inflight{route=%q} %d\n", route, g.admission[route].inflight)
	}
	fmt.Fprintln(w, "# HELP hpcserve_admission_queued Requests waiting for a handler slot, by route.")
	fmt.Fprintln(w, "# TYPE hpcserve_admission_queued gauge")
	for _, route := range admRoutes {
		fmt.Fprintf(w, "hpcserve_admission_queued{route=%q} %d\n", route, g.admission[route].queued)
	}
	fmt.Fprintln(w, "# HELP hpcserve_admission_peak_inflight High-water mark of concurrent handlers, by route.")
	fmt.Fprintln(w, "# TYPE hpcserve_admission_peak_inflight gauge")
	for _, route := range admRoutes {
		fmt.Fprintf(w, "hpcserve_admission_peak_inflight{route=%q} %d\n", route, g.admission[route].peak)
	}
	fmt.Fprintln(w, "# HELP hpcserve_admission_shed_total Requests shed at admission, by route.")
	fmt.Fprintln(w, "# TYPE hpcserve_admission_shed_total counter")
	for _, route := range admRoutes {
		fmt.Fprintf(w, "hpcserve_admission_shed_total{route=%q} %d\n", route, g.admission[route].shed)
	}
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
