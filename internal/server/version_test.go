package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
)

// TestCondProbCacheVersionIsolation pins the stale-cache fix: condprob cache
// keys embed the dataset version, so after POST /v1/events advances the
// store, the same query must MISS and recompute — a HIT can only ever pair
// with the version that populated the entry. Before the fix, the pre-append
// answer would keep serving as a HIT forever.
func TestCondProbCacheVersionIsolation(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	url := ts.URL + "/v1/condprob?anchor=HW&window=week&scope=node"

	get := func() (cache string, version uint64, out condProbJSON) {
		t.Helper()
		resp := getJSON(t, url, http.StatusOK, &out)
		v, err := strconv.ParseUint(resp.Header.Get("X-Dataset-Version"), 10, 64)
		if err != nil {
			t.Fatalf("bad X-Dataset-Version %q: %v", resp.Header.Get("X-Dataset-Version"), err)
		}
		if v != out.DatasetVersion {
			t.Fatalf("header version %d != body version %d", v, out.DatasetVersion)
		}
		return resp.Header.Get("X-Cache"), v, out
	}

	c1, v1, r1 := get()
	if c1 != "MISS" {
		t.Fatalf("cold query X-Cache = %q, want MISS", c1)
	}
	c2, v2, r2 := get()
	if c2 != "HIT" {
		t.Fatalf("repeat query X-Cache = %q, want HIT", c2)
	}
	if v2 != v1 {
		t.Fatalf("HIT at version %d for an entry populated at version %d", v2, v1)
	}
	if r1 != r2 {
		t.Fatalf("cached result differs: %+v vs %+v", r1, r2)
	}

	// Advance the dataset with an in-period hardware failure: a new anchor
	// that must change the conditional's trial count.
	resp, body := postEvents(t, ts.URL,
		`{"events":[{"system":1,"node":1,"category":"HW","hw":"CPU","time":"2000-03-01T00:00:00Z"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST events = %d; body: %s", resp.StatusCode, body)
	}

	c3, v3, r3 := get()
	if c3 != "MISS" {
		t.Fatalf("post-append query X-Cache = %q, want MISS (stale hit across dataset versions)", c3)
	}
	if v3 <= v1 {
		t.Fatalf("dataset version %d did not advance past %d", v3, v1)
	}
	if r3.Conditional.Trials == r1.Conditional.Trials {
		t.Errorf("conditional trials unchanged (%d) after ingesting a new anchor", r3.Conditional.Trials)
	}
	c4, v4, r4 := get()
	if c4 != "HIT" || v4 != v3 {
		t.Fatalf("repeat at new version: X-Cache=%q version=%d, want HIT at %d", c4, v4, v3)
	}
	if r3 != r4 {
		t.Fatalf("cached result differs at new version: %+v vs %+v", r3, r4)
	}
}

// TestEventsVersionAdvance pins the wiring between ingest and the store:
// accepted events advance the dataset version reported in the response, a
// fully rejected batch leaves it untouched, and a frozen server never moves.
func TestEventsVersionAdvance(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	_, body := postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"NET"}]}`)
	var r1 eventsResponse
	mustDecode(t, body, &r1)
	if r1.DatasetVersion != 2 {
		t.Fatalf("version after first accepted batch = %d, want 2", r1.DatasetVersion)
	}
	_, body = postEvents(t, ts.URL, `{"events":[{"system":9,"node":0,"category":"NET"}]}`)
	var r2 eventsResponse
	mustDecode(t, body, &r2)
	if r2.DatasetVersion != 2 {
		t.Fatalf("rejected batch moved version to %d", r2.DatasetVersion)
	}

	frozen, _ := newTestServer(t, func(cfg *Config) { cfg.FrozenDataset = true })
	_, body = postEvents(t, frozen.URL, `{"events":[{"system":1,"node":0,"category":"NET"}]}`)
	var r3 eventsResponse
	mustDecode(t, body, &r3)
	if r3.Accepted != 1 || r3.DatasetVersion != 1 {
		t.Fatalf("frozen server: accepted=%d version=%d, want 1 and 1", r3.Accepted, r3.DatasetVersion)
	}
}

func mustDecode(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
}
