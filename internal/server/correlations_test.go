package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
)

// correlationsBody mirrors correlationsJSON for decoding.
type correlationsBody struct {
	Window         string  `json:"window"`
	Scope          string  `json:"scope"`
	System         int     `json:"system"`
	MinSupport     int64   `json:"min_support"`
	MinConfidence  float64 `json:"min_confidence"`
	DatasetVersion uint64  `json:"dataset_version"`
	Events         int64   `json:"events"`
	Rules          []struct {
		Anchor     string  `json:"anchor"`
		Target     string  `json:"target"`
		Scope      string  `json:"scope"`
		Support    int64   `json:"support"`
		Anchors    int64   `json:"anchors"`
		Confidence float64 `json:"confidence"`
		Lift       float64 `json:"lift"`
	} `json:"rules"`
}

type anomaliesBody struct {
	System         int    `json:"system"`
	K              int    `json:"k"`
	DatasetVersion uint64 `json:"dataset_version"`
	Anomalies      []struct {
		System int     `json:"system"`
		Node   int     `json:"node"`
		Score  float64 `json:"score"`
		Events int     `json:"events"`
	} `json:"anomalies"`
}

// TestCorrelationsEndpoint pins the single-shard happy path: testDS's
// repeated HW-then-SW same-node sequence surfaces as the HW→SW node rule,
// the response carries the pinned dataset version, and a repeated query is
// a cache hit.
func TestCorrelationsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	url := ts.URL + "/v1/correlations?window=week&scope=node&min_support=2&min_confidence=0.1"
	var body correlationsBody
	resp := getJSON(t, url, http.StatusOK, &body)
	if got := resp.Header.Get("X-Dataset-Version"); got != "1" {
		t.Fatalf("X-Dataset-Version = %q, want 1", got)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
	if body.Window != "week" || body.Scope != "node" || body.DatasetVersion != 1 {
		t.Fatalf("body envelope = %+v", body)
	}
	if body.Events != 18 {
		t.Fatalf("events = %d, want 18", body.Events)
	}
	found := false
	for _, r := range body.Rules {
		if r.Anchor == "HW" && r.Target == "SW" {
			found = true
			// Every one of the 8 hardware events is followed by an OS crash
			// six hours later on the same node.
			if r.Support != 8 || r.Anchors != 8 || r.Confidence != 1 {
				t.Fatalf("HW→SW rule = %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("HW→SW rule missing from %+v", body.Rules)
	}

	resp2 := getJSON(t, url, http.StatusOK, nil)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", resp2.Header.Get("X-Cache"))
	}

	// Unmaintained windows, unknown systems and malformed thresholds fail
	// loudly before any compute.
	getJSON(t, ts.URL+"/v1/correlations?window=36h", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/correlations?system=9", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/correlations?min_support=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/correlations?min_confidence=2", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/correlations?bogus=1", http.StatusBadRequest, nil)
}

// TestLiveCorrelationsReflectAppend is the freshness acceptance: an event
// batch POSTed to /v1/events must be reflected in the very next
// /v1/correlations answer — new dataset version, new counts — with no
// stale-cache leakage across versions.
func TestLiveCorrelationsReflectAppend(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	url := ts.URL + "/v1/correlations?window=week&scope=node&min_support=1&min_confidence=0.01"
	var before correlationsBody
	getJSON(t, url, http.StatusOK, &before)

	// A fresh HW→SW pair on node 1, 30 minutes apart, just after the boot
	// period. One batch, so the store advances exactly one version.
	body := fmt.Sprintf(`{"events":[
		{"system":1,"node":1,"time":%q,"category":"HW","hw":"CPU"},
		{"system":1,"node":1,"time":%q,"category":"SW","sw":"OS"}]}`,
		day(100).Format("2006-01-02T15:04:05Z"), day(100).Add(30*time.Minute).Format("2006-01-02T15:04:05Z"))
	resp, rbody := postEvents(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST events = %d; body: %s", resp.StatusCode, rbody)
	}

	var after correlationsBody
	resp2 := getJSON(t, url, http.StatusOK, &after)
	if after.DatasetVersion != before.DatasetVersion+1 {
		t.Fatalf("dataset version after append = %d, want %d", after.DatasetVersion, before.DatasetVersion+1)
	}
	if got := resp2.Header.Get("X-Dataset-Version"); got != fmt.Sprint(after.DatasetVersion) {
		t.Fatalf("X-Dataset-Version = %q, want %d", got, after.DatasetVersion)
	}
	if after.Events != before.Events+2 {
		t.Fatalf("events after append = %d, want %d", after.Events, before.Events+2)
	}
	support := func(b correlationsBody, anchor, target string) int64 {
		for _, r := range b.Rules {
			if r.Anchor == anchor && r.Target == target {
				return r.Support
			}
		}
		return 0
	}
	if got, want := support(after, "HW", "SW"), support(before, "HW", "SW")+1; got != want {
		t.Fatalf("HW→SW support after append = %d, want %d", got, want)
	}
}

// TestAnomaliesEndpoint pins the anomaly ranking over testDS: node 0 holds
// 16 of the 18 failures, so it must rank first, scores must descend, and
// parameter validation must fail loudly.
func TestAnomaliesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var body anomaliesBody
	resp := getJSON(t, ts.URL+"/v1/anomalies?k=3", http.StatusOK, &body)
	if got := resp.Header.Get("X-Dataset-Version"); got != "1" {
		t.Fatalf("X-Dataset-Version = %q, want 1", got)
	}
	if body.K != 3 || len(body.Anomalies) == 0 || len(body.Anomalies) > 3 {
		t.Fatalf("anomalies body = %+v", body)
	}
	if body.Anomalies[0].Node != 0 || body.Anomalies[0].Events != 16 {
		t.Fatalf("top anomaly = %+v, want node 0 with 16 events", body.Anomalies[0])
	}
	for i := 1; i < len(body.Anomalies); i++ {
		if body.Anomalies[i].Score > body.Anomalies[i-1].Score {
			t.Fatalf("anomaly scores not descending: %+v", body.Anomalies)
		}
	}
	resp2 := getJSON(t, ts.URL+"/v1/anomalies?k=3", http.StatusOK, nil)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", resp2.Header.Get("X-Cache"))
	}

	getJSON(t, ts.URL+"/v1/anomalies?k=0", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/anomalies?system=9", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/anomalies?bogus=1", http.StatusBadRequest, nil)
}

// TestCorrelationsScatterMatchesSingle pins the scatter-gather merge
// identity through HTTP: a 3-shard fleet's /v1/correlations and
// /v1/anomalies bodies must be byte-identical to a single-store server over
// the same dataset — MergeRuleCounts and the top-k anomaly merge are exact,
// not approximate.
func TestCorrelationsScatterMatchesSingle(t *testing.T) {
	_, sharded := newShardedServer(t, "")
	singleSrv, err := New(Config{Dataset: fleetDS(), Window: trace.Day, Now: func() time.Time { return day(100) }})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(singleSrv.Handler())
	defer single.Close()

	for _, q := range []string{
		"/v1/correlations?window=week&scope=node&min_support=1&min_confidence=0.01",
		"/v1/correlations?window=day&scope=system&min_support=1&min_confidence=0.01",
		"/v1/correlations?window=week&scope=rack&system=4",
		"/v1/anomalies?k=7",
		"/v1/anomalies?system=2&k=3",
	} {
		respA, bodyA := getRaw(t, sharded.URL+q)
		respB, bodyB := getRaw(t, single.URL+q)
		if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d vs %d; bodies %s %s", q, respA.StatusCode, respB.StatusCode, bodyA, bodyB)
		}
		if respA.Header.Get("X-Partial") != "" {
			t.Fatalf("%s: healthy fleet answered partial", q)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("%s: sharded body differs from single:\n%s\n%s", q, bodyA, bodyB)
		}
	}
}

// TestCorrelationsPartialOnShardKill is the chaos-gate acceptance: with one
// shard killed, /v1/correlations still answers 200 with X-Partial: true,
// and the surviving shards' rules are byte-equal to an uninterrupted twin
// serving exactly the surviving systems.
func TestCorrelationsPartialOnShardKill(t *testing.T) {
	srv, ts := newShardedServer(t, "")
	if err := srv.KillShard(0); err != nil {
		t.Fatal(err)
	}
	// The twin serves only the systems the dead shard did not own.
	var surviving []int
	for i := 1; i < srv.ShardCount(); i++ {
		for _, sys := range srv.fabric.shards[i].systems {
			surviving = append(surviving, sys.ID)
		}
	}
	twinSrv, err := New(Config{Dataset: fleetDS().FilterSystems(surviving...), Window: trace.Day, Now: func() time.Time { return day(100) }})
	if err != nil {
		t.Fatal(err)
	}
	twin := httptest.NewServer(twinSrv.Handler())
	defer twin.Close()

	for _, q := range []string{
		"/v1/correlations?window=week&scope=node&min_support=1&min_confidence=0.01",
		"/v1/anomalies?k=5",
	} {
		resp, body := getRaw(t, ts.URL+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s with dead shard = %d; body: %s", q, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Partial") != "true" {
			t.Fatalf("%s with dead shard: X-Partial = %q, want true", q, resp.Header.Get("X-Partial"))
		}
		twinResp, twinBody := getRaw(t, twin.URL+q)
		if twinResp.StatusCode != http.StatusOK {
			t.Fatalf("twin %s = %d", q, twinResp.StatusCode)
		}
		if !bytes.Equal(body, twinBody) {
			t.Fatalf("%s: partial body differs from surviving-systems twin:\n%s\n%s", q, body, twinBody)
		}
	}

	// A query scoped to a dead shard's system is unavailable, not partial.
	deadSys := srv.fabric.shards[0].systems[0].ID
	resp, _ := getRaw(t, ts.URL+fmt.Sprintf("/v1/correlations?system=%d", deadSys))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("correlations for dead shard's system = %d, want 503", resp.StatusCode)
	}
}
