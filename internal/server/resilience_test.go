package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/checkpoint"
	"github.com/hpcfail/hpcfail/internal/faultinject"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// newTestServerFull is newTestServer but also returns the *Server for
// white-box pokes (limiters, breaker).
func newTestServerFull(t *testing.T, mutate func(*Config)) (*httptest.Server, *Server, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: day(100)}
	cfg := Config{Dataset: testDS(), Window: trace.Day, Now: clock.Now}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, clock
}

// TestSheddingReturns429 fills a route's only slot, then asserts the next
// request is shed with 429 and a Retry-After hint — and admitted again once
// the slot frees.
func TestSheddingReturns429(t *testing.T) {
	ts, s, _ := newTestServerFull(t, func(cfg *Config) {
		cfg.Limits = map[string]RouteLimit{"/v1/risk/top": {Concurrency: 1, Queue: 0}}
	})
	release, ok := s.limits["/v1/risk/top"].admit(context.Background())
	if !ok {
		t.Fatal("could not occupy the only slot")
	}

	resp, err := http.Get(ts.URL + "/v1/risk/top?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated route = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	release()
	getJSON(t, ts.URL+"/v1/risk/top?k=1", http.StatusOK, nil)

	metrics := string(fetchMetrics(t, ts))
	if !strings.Contains(metrics, "hpcserve_shed_total 1") {
		t.Errorf("metrics missing shed count:\n%s", metrics)
	}
	if !strings.Contains(metrics, `hpcserve_admission_shed_total{route="/v1/risk/top"} 1`) {
		t.Errorf("metrics missing per-route shed:\n%s", metrics)
	}
}

// TestConcurrencyNeverExceeded hammers a tightly limited route and asserts
// the limiter's high-water mark stayed within the configured bound while
// every request got either a result or a clean 429.
func TestConcurrencyNeverExceeded(t *testing.T) {
	const limit = 3
	ts, s, _ := newTestServerFull(t, func(cfg *Config) {
		cfg.Limits = map[string]RouteLimit{"/v1/risk/top": {Concurrency: limit, Queue: 2}}
	})

	var wg sync.WaitGroup
	var ok200, ok429, other sync.Map
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/risk/top?k=4")
			if err != nil {
				other.Store(i, err.Error())
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Store(i, true)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					other.Store(i, "429 without Retry-After")
					return
				}
				ok429.Store(i, true)
			default:
				other.Store(i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	other.Range(func(k, v any) bool {
		t.Errorf("request %v: unexpected outcome %v", k, v)
		return true
	})
	count := func(m *sync.Map) int {
		n := 0
		m.Range(func(any, any) bool { n++; return true })
		return n
	}
	if count(&ok200) == 0 {
		t.Error("no request succeeded under load")
	}
	if peak := s.limits["/v1/risk/top"].peak.Load(); peak > limit {
		t.Errorf("peak concurrency %d exceeded limit %d", peak, limit)
	}
	if got := count(&ok200) + count(&ok429); got != 60 {
		t.Errorf("accounted for %d of 60 requests", got)
	}
}

// TestBreakerDegradesToCache opens the circuit and asserts the three
// degraded behaviors: cached answers still flow (with X-Degraded), misses
// are shed 503, and after the cooldown a successful trial closes the
// circuit again.
func TestBreakerDegradesToCache(t *testing.T) {
	ts, s, clock := newTestServerFull(t, nil)
	cached := ts.URL + "/v1/condprob?anchor=HW&window=week"
	uncached := ts.URL + "/v1/condprob?anchor=SW&window=week"

	getJSON(t, cached, http.StatusOK, nil) // prime the cache

	for i := 0; i < 5; i++ {
		s.breaker.report(false)
	}
	if open, _ := s.breaker.snapshot(); !open {
		t.Fatal("breaker not open after threshold failures")
	}

	resp := getJSON(t, cached, http.StatusOK, nil)
	if got := resp.Header.Get("X-Degraded"); got != "cache-only" {
		t.Errorf("cached hit while open: X-Degraded = %q, want cache-only", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("cached hit while open: X-Cache = %q, want HIT", got)
	}

	missResp, err := http.Get(uncached)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, missResp.Body)
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached miss while open = %d, want 503", missResp.StatusCode)
	}
	if got := missResp.Header.Get("X-Degraded"); got != "circuit-open" {
		t.Errorf("X-Degraded = %q, want circuit-open", got)
	}
	if missResp.Header.Get("Retry-After") == "" {
		t.Error("circuit-open shed missing Retry-After")
	}

	metrics := string(fetchMetrics(t, ts))
	if !strings.Contains(metrics, "hpcserve_breaker_open 1") {
		t.Errorf("metrics missing open breaker:\n%s", metrics)
	}

	// Past the cooldown the next miss is the half-open trial; it succeeds
	// and closes the circuit.
	clock.Advance(11 * time.Second)
	getJSON(t, uncached, http.StatusOK, nil)
	if open, _ := s.breaker.snapshot(); open {
		t.Error("breaker still open after successful trial")
	}
	resp = getJSON(t, cached, http.StatusOK, nil)
	if got := resp.Header.Get("X-Degraded"); got != "" {
		t.Errorf("closed breaker still degrading: X-Degraded = %q", got)
	}
}

// TestBreakerOpensOnTimeouts drives the breaker end to end: with a
// nanosecond compute budget every miss fails, and after the threshold the
// server sheds compute instead of burning timeouts.
func TestBreakerOpensOnTimeouts(t *testing.T) {
	ts, _, _ := newTestServerFull(t, func(cfg *Config) {
		cfg.RequestTimeout = time.Nanosecond
		cfg.BreakerThreshold = 2
	})
	for i := 0; i < 2; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/condprob?anchor=HW&window=%dh", ts.URL, 24*(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("timed-out compute = %d, want 503", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/condprob?anchor=NET&window=week")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Degraded"); got != "circuit-open" {
		t.Errorf("after threshold timeouts X-Degraded = %q, want circuit-open", got)
	}
}

// TestIdempotencyReplay posts the same batch twice under one key and
// asserts the second is a replay: identical body, no second ingestion.
func TestIdempotencyReplay(t *testing.T) {
	ts, _, _ := newTestServerFull(t, nil)
	body := `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`

	post := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Idempotency-Key", "batch-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	first, firstBody := post()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d; body: %s", first.StatusCode, firstBody)
	}
	if first.Header.Get("X-Idempotent-Replay") != "" {
		t.Error("first POST marked as replay")
	}
	second, secondBody := post()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d", second.StatusCode)
	}
	if second.Header.Get("X-Idempotent-Replay") != "1" {
		t.Error("second POST not marked as replay")
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("replayed body differs:\n%s\nvs\n%s", firstBody, secondBody)
	}

	metrics := string(fetchMetrics(t, ts))
	for _, want := range []string{
		"hpcserve_events_accepted_total 1", // not 2: the replay ingested nothing
		"hpcserve_engine_observed_events_total 1",
		"hpcserve_idempotent_replays_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestIdempotencyConcurrentDuplicates races many POSTs on one key: the key
// is reserved atomically at request start, so exactly one request ingests
// and every racer replays its response — not just serial retries.
func TestIdempotencyConcurrentDuplicates(t *testing.T) {
	ts, _, _ := newTestServerFull(t, nil)
	body := `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Idempotency-Key", "race-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d; body: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	metrics := string(fetchMetrics(t, ts))
	for _, want := range []string{
		"hpcserve_events_accepted_total 1", // one ingestion across all racers
		"hpcserve_engine_observed_events_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestAppendFailureRecordedUnderKey: a WAL-append failure fails the whole
// request with 500, and that outcome is recorded under the idempotency key
// — a retry must replay the 500, not re-ingest events from earlier in the
// batch that are already durable and observed.
func TestAppendFailureRecordedUnderKey(t *testing.T) {
	ds := testDS()
	engine, err := risk.FromDataset(ds, trace.Day)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := risk.OpenJournal(risk.JournalConfig{
		Engine: engine,
		WAL:    wal.Options{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{t: day(100)}
	s, err := New(Config{Dataset: ds, Window: trace.Day, Journal: j, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, b := postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest = %d; body: %s", resp.StatusCode, b)
	}
	j.Close() // break the WAL: every append now fails with risk.ErrAppend

	post := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events",
			strings.NewReader(`{"events":[{"system":1,"node":1,"category":"SW","sw":"OS"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Idempotency-Key", "broken-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}
	first, firstBody := post()
	if first.StatusCode != http.StatusInternalServerError {
		t.Fatalf("broken-WAL POST = %d, want 500; body: %s", first.StatusCode, firstBody)
	}
	if first.Header.Get("X-Idempotent-Replay") != "" {
		t.Error("first failure marked as replay")
	}
	second, secondBody := post()
	if second.StatusCode != http.StatusInternalServerError {
		t.Fatalf("retried POST = %d, want replayed 500", second.StatusCode)
	}
	if second.Header.Get("X-Idempotent-Replay") != "1" {
		t.Error("retry after WAL failure not replayed — it would re-ingest the durable prefix")
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Errorf("replayed failure body differs:\n%s\nvs\n%s", firstBody, secondBody)
	}

	metrics := string(fetchMetrics(t, ts))
	if !strings.Contains(metrics, "hpcserve_events_accepted_total 1") {
		t.Errorf("failed batches must not count as accepted:\n%s", metrics)
	}
}

// TestEventTimestampValidation rejects absurd event times.
func TestEventTimestampValidation(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	for _, tc := range []struct{ name, when string }{
		{"far-future", day(100).Add(2 * time.Hour).Format(time.RFC3339)},
		{"pre-epoch", "1970-06-01T00:00:00Z"},
		{"ancient", "1985-01-01T00:00:00Z"},
	} {
		body := fmt.Sprintf(`{"events":[{"system":1,"node":0,"category":"HW","time":%q}]}`, tc.when)
		resp, b := postEvents(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400; body: %s", tc.name, resp.StatusCode, b)
		}
	}
	// Within bounds (just under an hour ahead) is accepted.
	body := fmt.Sprintf(`{"events":[{"system":1,"node":0,"category":"HW","time":%q}]}`,
		day(100).Add(30*time.Minute).Format(time.RFC3339))
	resp, b := postEvents(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("near-future event = %d, want 200; body: %s", resp.StatusCode, b)
	}
}

// TestRiskTopKClamp: k beyond the node population is clamped, not an error.
func TestRiskTopKClamp(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var out struct {
		Scores []scoreJSON `json:"scores"`
	}
	getJSON(t, ts.URL+"/v1/risk/top?k=1000000000", http.StatusOK, &out)
	if len(out.Scores) > 4 {
		t.Errorf("4-node system returned %d scores", len(out.Scores))
	}
}

// TestRiskAtParam pins the deterministic-scoring contract: the same ?at=
// instant returns byte-identical answers regardless of wall time.
func TestRiskAtParam(t *testing.T) {
	ts, clock := newTestServer(t, nil)
	postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`)
	at := day(100).Add(time.Minute).Format(time.RFC3339)

	fetch := func() string {
		resp, err := http.Get(ts.URL + "/v1/risk/top?k=4&at=" + at)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("at query = %d; body: %s", resp.StatusCode, b)
		}
		return string(b)
	}
	first := fetch()
	clock.Advance(3 * time.Hour) // wall time moves; the pinned answer must not
	if second := fetch(); first != second {
		t.Errorf("?at= answer drifted with wall clock:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, `"at": "`+at) {
		t.Errorf("response at field not pinned:\n%s", first)
	}
}

// TestSnapshotEndpoint: /v1/snapshot is deterministic and two servers fed
// the same events serve identical bytes.
func TestSnapshotEndpoint(t *testing.T) {
	events := `{"events":[
		{"system":1,"node":0,"category":"HW","hw":"CPU","time":"2000-04-09T06:00:00Z"},
		{"system":1,"node":2,"category":"NET","time":"2000-04-09T07:00:00Z"}
	]}`
	fetch := func(ts *httptest.Server) string {
		resp, err := http.Get(ts.URL + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot = %d", resp.StatusCode)
		}
		return string(b)
	}

	tsA, _ := newTestServer(t, nil)
	tsB, _ := newTestServer(t, nil)
	postEvents(t, tsA.URL, events)
	postEvents(t, tsB.URL, events)

	a1, a2, b := fetch(tsA), fetch(tsA), fetch(tsB)
	if a1 != a2 {
		t.Error("snapshot not stable across reads")
	}
	if a1 != b {
		t.Errorf("identically fed servers diverge:\n%s\nvs\n%s", a1, b)
	}
	if !strings.Contains(a1, `"observed": 2`) {
		t.Errorf("snapshot missing observed events:\n%s", a1)
	}
}

// TestServerJournalRecovery runs the crash-recovery loop at the handler
// layer: ingest through a journaled server, drop it without shutdown,
// rebuild over the same WAL dir, and require /v1/snapshot and a pinned
// /v1/risk/top to be byte-identical to an uninterrupted twin.
func TestServerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: day(100)}

	openServer := func() (*httptest.Server, *risk.Journal) {
		t.Helper()
		ds := testDS()
		engine, err := risk.FromDataset(ds, trace.Day)
		if err != nil {
			t.Fatal(err)
		}
		j, _, err := risk.OpenJournal(risk.JournalConfig{
			Engine:         engine,
			WAL:            wal.Options{Dir: dir, Policy: wal.SyncAlways},
			SnapshotPolicy: checkpoint.Fixed{Every: time.Hour},
			Now:            clock.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Dataset: ds, Window: trace.Day, Journal: j, Now: clock.Now})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(s.Handler()), j
	}

	// Uninterrupted twin: plain in-memory server fed the same events.
	twin, _ := newTestServer(t, nil)

	events := []string{
		`{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU","time":"2000-04-09T06:00:00Z"}]}`,
		`{"events":[{"system":1,"node":1,"category":"SW","sw":"OS","time":"2000-04-09T07:00:00Z"}]}`,
		`{"events":[{"system":1,"node":3,"category":"NET","time":"2000-04-09T08:00:00Z"}]}`,
	}

	ts1, _ := openServer() // deliberately never closed cleanly: the "crash"
	for _, e := range events {
		if resp, b := postEvents(t, ts1.URL, e); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest = %d; body: %s", resp.StatusCode, b)
		}
		if resp, b := postEvents(t, twin.URL, e); resp.StatusCode != http.StatusOK {
			t.Fatalf("twin ingest = %d; body: %s", resp.StatusCode, b)
		}
	}
	ts1.Close() // closes the HTTP listener; the journal is simply dropped

	ts2, j2 := openServer()
	defer ts2.Close()
	defer j2.Close()

	get := func(ts *httptest.Server, path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d; body: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	at := "?k=4&at=" + day(100).Format(time.RFC3339)
	if got, want := get(ts2, "/v1/snapshot"), get(twin, "/v1/snapshot"); got != want {
		t.Errorf("recovered snapshot differs from uninterrupted twin:\n%s\nvs\n%s", got, want)
	}
	if got, want := get(ts2, "/v1/risk/top"+at), get(twin, "/v1/risk/top"+at); got != want {
		t.Errorf("recovered risk ranking differs:\n%s\nvs\n%s", got, want)
	}
}

// testLeakUnderLoad starts a real ServeListener, floods it with concurrent
// mixed traffic, cancels the serve context mid-flight, and asserts the
// server's goroutines all die.
func testLeakUnderLoad(t *testing.T, mutate func(*Config)) {
	t.Helper()
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dataset: testDS(), Window: trace.Day}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeListener(ctx, ln, cfg) }()

	url := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	paths := []string{
		"/healthz",
		"/v1/risk/top?k=4",
		"/v1/risk/0",
		"/v1/condprob?anchor=HW&window=week",
		"/v1/snapshot",
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				if resp, err := http.Get(url + paths[(i+n)%len(paths)]); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if n%5 == 0 {
					resp, err := http.Post(url+"/v1/events", "application/json",
						strings.NewReader(`{"events":[{"system":1,"node":1,"category":"NET"}]}`))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	// Cancel while traffic is still flowing, then let the clients drain.
	time.Sleep(30 * time.Millisecond)
	cancel()
	wg.Wait()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ServeListener did not return after cancel")
	}

	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownJoinsHandlersUnderChaos floods a ServeListener with
// chaos-injected traffic, cancels it mid-flight, and asserts no goroutines
// leak — the shutdown path must join in-flight handlers even when some
// connections were aborted by the injector.
func TestShutdownJoinsHandlersUnderChaos(t *testing.T) {
	testLeakUnderLoad(t, func(cfg *Config) {
		chaos := faultinject.NewChaos(faultinject.ChaosSpec{
			Seed:        7,
			LatencyProb: 0.2,
			MaxLatency:  5 * time.Millisecond,
			ErrorProb:   0.2,
			AbortProb:   0.1,
		})
		cfg.Middleware = chaos.Middleware
	})
}

// TestShutdownJoinsJournaledHandlers: same, with a journal in the ingest
// path — the final WAL sync must not race in-flight appends.
func TestShutdownJoinsJournaledHandlers(t *testing.T) {
	dir := t.TempDir()
	ds := testDS()
	engine, err := risk.FromDataset(ds, trace.Day)
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := risk.OpenJournal(risk.JournalConfig{
		Engine: engine,
		WAL:    wal.Options{Dir: dir, Policy: wal.SyncInterval},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	testLeakUnderLoad(t, func(cfg *Config) {
		cfg.Dataset = ds
		cfg.Journal = j
	})
}
