// Multi-tenant dataset serving: the root server owns a registry of named
// datasets ("tenants"), each an isolated child *Server — its own store,
// risk engine, correlation miner, shard fabric and WAL tree under
// <tenant-root>/<name>/shard-NNN/ — resolved per request from the
// /v1/d/{dataset}/... path. The reserved name "default" aliases the root
// server itself, so the single-tenant API is a strict subset of the
// multi-tenant one. Named tenants authenticate with a per-dataset token
// (X-Dataset-Token) or the operator's admin token (X-Admin-Token), and an
// admin API (POST/GET/DELETE /v1/datasets) drives the registry lifecycle.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/hpcfail/hpcfail/internal/registry"
	"github.com/hpcfail/hpcfail/internal/simulate"
)

// defaultTenantName is the reserved dataset name that resolves to the root
// server: /v1/d/default/... must answer byte-identically to the unprefixed
// routes.
const defaultTenantName = "default"

// datasetTokenHeader carries a tenant's auth token; adminTokenHeader the
// operator token that bypasses per-tenant auth and gates the admin API.
const (
	datasetTokenHeader = "X-Dataset-Token"
	adminTokenHeader   = "X-Admin-Token"
)

// tenantSpec is the durable generation recipe inside a tenant manifest:
// everything needed to rebuild the dataset deterministically at boot, so a
// crashed tenant recovers as generate(seed, scale) + WAL replay.
type tenantSpec struct {
	Seed    int64   `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Window  string  `json:"window,omitempty"`
	Shards  int     `json:"shards,omitempty"`
	Standby bool    `json:"standby,omitempty"`
}

// routes returns the per-tenant instrumented route table. The root mux and
// the /v1/d/{dataset} dispatcher both serve from it, so a named tenant's
// handler chain (admission, timeout, metrics, idempotency) is exactly the
// default tenant's.
func (s *Server) routes() map[string]http.Handler {
	s.routesOnce.Do(func() {
		s.routeTab = map[string]http.Handler{
			"/healthz":         s.instrument("/healthz", s.handleHealthz),
			"/readyz":          s.instrument("/readyz", s.handleReadyz),
			"/v1/risk/top":     s.instrument("/v1/risk/top", s.handleRiskTop),
			"/v1/risk/{node}":  s.instrument("/v1/risk/{node}", s.handleRiskNode),
			"/v1/condprob":     s.instrument("/v1/condprob", s.handleCondProb),
			"/v1/correlations": s.instrument("/v1/correlations", s.handleCorrelations),
			"/v1/anomalies":    s.instrument("/v1/anomalies", s.handleAnomalies),
			"/v1/snapshot":     s.instrument("/v1/snapshot", s.handleSnapshot),
			"/v1/rates":        s.instrument("/v1/rates", s.handleRates),
			"/v1/events":       s.instrument("/v1/events", s.handleEvents),
		}
	})
	return s.routeTab
}

// adminOK reports whether the request carries the operator admin token.
// With no admin token configured there is no bypass (per-tenant tokens
// still apply).
func (s *Server) adminOK(r *http.Request) bool {
	if s.adminToken == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(adminTokenHeader)), []byte(s.adminToken)) == 1
}

// adminGate enforces the admin token on the dataset-management API when
// one is configured; an unconfigured token leaves the API open (tests,
// single-operator deployments).
func (s *Server) adminGate(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken != "" && !s.adminOK(r) {
		s.writeError(w, http.StatusUnauthorized, fmt.Errorf("admin token required"))
		return false
	}
	return true
}

// acquireTenant resolves a canonical dataset name to its server, pinned
// against concurrent drain/close for the caller's lifetime (release the
// returned func when done). "default" resolves to the root server without
// auth — the unprefixed routes never authenticated, and byte-compatibility
// keeps it that way.
func (s *Server) acquireTenant(r *http.Request, canon string) (*Server, func(), error) {
	if canon == defaultTenantName {
		return s, func() {}, nil
	}
	if s.reg == nil {
		return nil, nil, fmt.Errorf("%w: %s", registry.ErrNotFound, canon)
	}
	var tn *registry.Tenant
	var release func()
	var err error
	if s.adminOK(r) {
		tn, release, err = s.reg.AcquireAny(canon)
	} else {
		tn, release, err = s.reg.Acquire(canon, r.Header.Get(datasetTokenHeader))
	}
	if err != nil {
		return nil, nil, err
	}
	ts, ok := tn.Resource().(*Server)
	if !ok {
		release()
		return nil, nil, fmt.Errorf("%w: %s", registry.ErrNotFound, canon)
	}
	return ts, release, nil
}

// writeTenantError maps registry resolution errors onto HTTP statuses.
func (s *Server) writeTenantError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, registry.ErrUnauthorized):
		s.writeError(w, http.StatusUnauthorized, fmt.Errorf("dataset %s: unauthorized", name))
	case errors.Is(err, registry.ErrDraining):
		w.Header().Set("Retry-After", retryAfter)
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("dataset %s is draining", name))
	default:
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
	}
}

// tenantRoute dispatches one /v1/d/{dataset}/... route: canonicalize the
// path's dataset name, authenticate and pin the tenant, and hand the
// request to that tenant's own instrumented handler chain. The pin is held
// for the whole handler, so a concurrent drain waits for this request.
func (s *Server) tenantRoute(route string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("dataset")
		canon, err := registry.Canonical(name)
		if err != nil {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
			return
		}
		ts, release, err := s.acquireTenant(r, canon)
		if err != nil {
			s.writeTenantError(w, canon, err)
			return
		}
		s.inflight.Add(1)
		defer func() {
			release()
			s.inflight.Done()
		}()
		ts.routes()[route].ServeHTTP(w, r)
	})
}

// eachTenant runs fn over every open named tenant's server (sorted by
// name), pinning each against concurrent close for the duration of fn.
func (s *Server) eachTenant(fn func(name string, ts *Server)) {
	if s.reg == nil {
		return
	}
	for _, name := range s.reg.Names() {
		tn, release, err := s.reg.AcquireAny(name)
		if err != nil {
			continue // draining or already closed
		}
		if ts, ok := tn.Resource().(*Server); ok {
			fn(name, ts)
		}
		release()
	}
}

// setBase rebases the lifecycle context detached computations run under —
// ServeListener points the root and every already-open tenant at the serve
// context; tenants built later inherit it at build time.
func (s *Server) setBase(ctx context.Context) {
	s.base = ctx
	s.eachTenant(func(_ string, ts *Server) { ts.base = ctx })
}

// Close flushes a tenant server's durable state: every shard's WAL is
// synced and its journal closed, so the tenant's directory can be reopened
// (or deleted) by another owner. The registry calls it after draining; the
// root server's lifecycle belongs to ServeListener instead.
func (s *Server) Close() error {
	s.fabric.syncAll()
	for i := range s.fabric.shards {
		s.fabric.detachJournal(i)
	}
	return nil
}

// buildTenantResource is the registry's constructor: derive a child server
// config from the root's template, generate the tenant's dataset from its
// manifest spec, and wire its WAL tree under the tenant directory. Named
// tenants always run the sharded fabric (>=1 shard) so their WAL segments
// live at <dir>/shard-NNN/, never loose next to tenant.json.
func (s *Server) buildTenantResource(name, dir string, m registry.Manifest) (registry.Resource, error) {
	var spec tenantSpec
	if len(m.Spec) > 0 {
		if err := json.Unmarshal(m.Spec, &spec); err != nil {
			return nil, fmt.Errorf("bad dataset spec: %w", err)
		}
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Scale <= 0 {
		spec.Scale = 0.05
	}
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	w := s.tmpl.Window
	if spec.Window != "" {
		var err error
		if w, err = parseWindow(spec.Window); err != nil {
			return nil, err
		}
	}
	ds, err := simulate.Generate(simulate.Options{Seed: spec.Seed, Scale: spec.Scale})
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Dataset:            ds,
		Window:             w,
		Shards:             spec.Shards,
		FrozenDataset:      s.tmpl.FrozenDataset,
		CorrelationWindows: s.tmpl.CorrelationWindows,
		RequestTimeout:     s.tmpl.RequestTimeout,
		CacheSize:          s.tmpl.CacheSize,
		BreakerThreshold:   s.tmpl.BreakerThreshold,
		BreakerCooldown:    s.tmpl.BreakerCooldown,
		ShardDeadline:      s.tmpl.ShardDeadline,
		HeartbeatInterval:  s.tmpl.HeartbeatInterval,
		HeartbeatDeadline:  s.tmpl.HeartbeatDeadline,
		SpaceProbeInterval: s.tmpl.SpaceProbeInterval,
		SnapshotPolicy:     s.tmpl.SnapshotPolicy,
		Now:                s.now,
		Logf:               s.logf,
	}
	// Per-tenant quota feeds the tenant's own admission layer: the expensive
	// compute routes get the quota's concurrency bound, layered over any
	// operator-supplied limits.
	limits := make(map[string]RouteLimit, len(s.tmpl.Limits)+3)
	for route, lim := range s.tmpl.Limits {
		limits[route] = lim
	}
	if m.Quota.MaxConcurrent > 0 {
		rl := RouteLimit{Concurrency: m.Quota.MaxConcurrent, Queue: m.Quota.MaxQueue}
		for _, route := range []string{"/v1/condprob", "/v1/correlations", "/v1/anomalies"} {
			limits[route] = rl
		}
	}
	if len(limits) > 0 {
		cfg.Limits = limits
	}
	if dir != "" {
		wopts := s.tmpl.TenantWAL
		wopts.Dir = dir
		cfg.ShardWAL = wopts
		cfg.Standby = spec.Standby
	}
	ts, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	ts.name = m.Name
	ts.quota = m.Quota
	ts.base = s.base
	return ts, nil
}

// datasetCreateRequest is the POST /v1/datasets body.
type datasetCreateRequest struct {
	Name    string         `json:"name"`
	Token   string         `json:"token,omitempty"`
	Quota   registry.Quota `json:"quota,omitempty"`
	Seed    int64          `json:"seed,omitempty"`
	Scale   float64        `json:"scale,omitempty"`
	Window  string         `json:"window,omitempty"`
	Shards  int            `json:"shards,omitempty"`
	Standby bool           `json:"standby,omitempty"`
}

// datasetStatusJSON is one dataset's row in GET /v1/datasets.
type datasetStatusJSON struct {
	Name           string `json:"name"`
	State          string `json:"state"`
	Systems        int    `json:"systems"`
	DatasetVersion uint64 `json:"dataset_version"`
	Shards         int    `json:"shards"`
	ReadOnly       bool   `json:"read_only"`
}

// maxDatasetBody bounds a POST /v1/datasets body.
const maxDatasetBody = 1 << 16

func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	var req datasetCreateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDatasetBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	canon, err := registry.Canonical(req.Name)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if canon == defaultTenantName {
		s.writeError(w, http.StatusConflict, fmt.Errorf("dataset name %q is reserved", canon))
		return
	}
	spec, err := json.Marshal(tenantSpec{
		Seed: req.Seed, Scale: req.Scale, Window: req.Window,
		Shards: req.Shards, Standby: req.Standby,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	tn, err := s.reg.Create(canon, registry.Manifest{Token: req.Token, Quota: req.Quota, Spec: spec})
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, registry.ErrExists) {
			code = http.StatusConflict
		}
		s.writeError(w, code, err)
		return
	}
	ts := tn.Resource().(*Server)
	s.writeJSON(w, http.StatusCreated, datasetStatusJSON{
		Name:           tn.Name(),
		State:          tn.State().String(),
		Systems:        len(ts.fabric.fleet),
		DatasetVersion: ts.fabric.maxVersion(),
		Shards:         ts.fabric.n(),
	})
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	rows := []datasetStatusJSON{{
		Name:           defaultTenantName,
		State:          registry.StateOpen.String(),
		Systems:        len(s.fabric.fleet),
		DatasetVersion: s.fabric.maxVersion(),
		Shards:         s.fabric.n(),
		ReadOnly:       s.fabric.readOnly(),
	}}
	s.eachTenant(func(name string, ts *Server) {
		rows = append(rows, datasetStatusJSON{
			Name:           name,
			State:          registry.StateOpen.String(),
			Systems:        len(ts.fabric.fleet),
			DatasetVersion: ts.fabric.maxVersion(),
			Shards:         ts.fabric.n(),
			ReadOnly:       ts.fabric.readOnly(),
		})
	})
	s.writeJSON(w, http.StatusOK, map[string]any{"datasets": rows})
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	canon, err := registry.Canonical(r.PathValue("dataset"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("dataset")))
		return
	}
	if canon == defaultTenantName {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("the default dataset cannot be deleted"))
		return
	}
	if err := s.reg.Delete(r.Context(), canon); err != nil {
		switch {
		case errors.Is(err, registry.ErrNotFound):
			s.writeError(w, http.StatusNotFound, err)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			w.Header().Set("Retry-After", retryAfter)
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("dataset %s still draining: %w", canon, err))
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"deleted": canon})
}
