package server

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// riskQuery is the parsed form of /v1/risk/{node} and /v1/risk/top query
// strings.
type riskQuery struct {
	// System restricts the query to one system; 0 means "the only system"
	// for node queries and "all systems" for top queries.
	System int
	// Node is the path's node ID (node queries only).
	Node int
	// K bounds /v1/risk/top output.
	K int
	// At pins the scoring time (RFC3339); zero means "now". Deterministic
	// responses let recovery tests compare servers byte-for-byte.
	At time.Time
}

// maxTopK caps /v1/risk/top so one request cannot serialize every node of
// a large catalog.
const maxTopK = 1000

// parseRiskQuery parses a raw /v1/risk query string (without the node path
// element). Unknown parameters are rejected so typos fail loudly instead of
// silently falling back to defaults.
func parseRiskQuery(raw string) (riskQuery, error) {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return riskQuery{}, fmt.Errorf("bad query string: %w", err)
	}
	q := riskQuery{K: 10}
	for key, vs := range vals {
		if len(vs) != 1 {
			return riskQuery{}, fmt.Errorf("parameter %q repeated", key)
		}
		v := vs[0]
		switch key {
		case "system":
			q.System, err = strconv.Atoi(v)
			if err != nil || q.System < 0 {
				return riskQuery{}, fmt.Errorf("bad system %q", v)
			}
		case "k":
			q.K, err = strconv.Atoi(v)
			if err != nil || q.K < 1 {
				return riskQuery{}, fmt.Errorf("k must be a positive integer, got %q", v)
			}
			// Oversized k is clamped, not rejected: "give me everything"
			// is a reasonable ask, but one request must not serialize an
			// unbounded catalog. The handler clamps further to the node
			// count in scope.
			if q.K > maxTopK {
				q.K = maxTopK
			}
		case "at":
			q.At, err = time.Parse(time.RFC3339, v)
			if err != nil {
				return riskQuery{}, fmt.Errorf("bad at %q (want RFC3339)", v)
			}
		default:
			return riskQuery{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return q, nil
}

// condProbQuery is the parsed, canonicalized form of a /v1/condprob query.
type condProbQuery struct {
	anchor, target string // canonical event-spec labels ("" = any failure)
	window         time.Duration
	scope          analysis.Scope
	group          int // 0 = all systems
}

// Key returns the canonical cache key: two requests that mean the same
// query map to the same key regardless of parameter order or label case.
func (q condProbQuery) Key() string {
	return fmt.Sprintf("anchor=%s&target=%s&window=%s&scope=%s&group=%d",
		q.anchor, q.target, q.window, q.scope, q.group)
}

// parseCondProbQuery parses a raw /v1/condprob query string. It shares the
// event syntax of cmd/hpcanalyze: ENV|HW|HUMAN|NET|SW|UNDET, optionally
// refined as HW/<component>, SW/<class>, or ENV/<subtype>.
func parseCondProbQuery(raw string) (condProbQuery, error) {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return condProbQuery{}, fmt.Errorf("bad query string: %w", err)
	}
	q := condProbQuery{window: trace.Week, scope: analysis.ScopeNode}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		vs := vals[key]
		if len(vs) != 1 {
			return condProbQuery{}, fmt.Errorf("parameter %q repeated", key)
		}
		v := vs[0]
		switch key {
		case "anchor":
			if q.anchor, _, err = parseEventSpec(v); err != nil {
				return condProbQuery{}, fmt.Errorf("anchor: %w", err)
			}
		case "target":
			if q.target, _, err = parseEventSpec(v); err != nil {
				return condProbQuery{}, fmt.Errorf("target: %w", err)
			}
		case "window":
			if q.window, err = parseWindow(v); err != nil {
				return condProbQuery{}, err
			}
		case "scope":
			if q.scope, err = parseScope(v); err != nil {
				return condProbQuery{}, err
			}
		case "group":
			q.group, err = strconv.Atoi(v)
			if err != nil || q.group < 0 || q.group > 2 {
				return condProbQuery{}, fmt.Errorf("group must be 0, 1 or 2, got %q", v)
			}
		default:
			return condProbQuery{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return q, nil
}

// preds resolves the canonical anchor/target labels back into predicates.
// Canonical labels always re-parse; a failure here is a bug.
func (q condProbQuery) preds() (anchor, target trace.Pred, err error) {
	if _, anchor, err = parseEventSpec(q.anchor); err != nil {
		return nil, nil, err
	}
	_, target, err = parseEventSpec(q.target)
	return anchor, target, err
}

// parseEventSpec parses the CLI event syntax, returning the canonical label
// (stable across case variants) and the predicate. An empty spec means "any
// failure" and yields a nil predicate.
func parseEventSpec(s string) (string, trace.Pred, error) {
	if s == "" {
		return "", nil, nil
	}
	catLabel, rest, refined := strings.Cut(s, "/")
	cat, err := parseCategoryFold(catLabel)
	if err != nil {
		return "", nil, err
	}
	if !refined {
		return cat.String(), trace.CategoryPred(cat), nil
	}
	switch cat {
	case trace.Hardware:
		for _, c := range trace.HWComponents {
			if strings.EqualFold(c.String(), rest) {
				return "HW/" + c.String(), trace.HWPred(c), nil
			}
		}
		return "", nil, fmt.Errorf("unknown hardware component %q", rest)
	case trace.Software:
		for _, c := range trace.SWClasses {
			if strings.EqualFold(c.String(), rest) {
				return "SW/" + c.String(), trace.SWPred(c), nil
			}
		}
		return "", nil, fmt.Errorf("unknown software class %q", rest)
	case trace.Environment:
		for _, c := range trace.EnvClasses {
			if strings.EqualFold(c.String(), rest) {
				return "ENV/" + c.String(), trace.EnvPred(c), nil
			}
		}
		return "", nil, fmt.Errorf("unknown environment subtype %q", rest)
	default:
		return "", nil, fmt.Errorf("category %s has no subtypes", cat)
	}
}

func parseCategoryFold(s string) (trace.Category, error) {
	for _, c := range trace.Categories {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown category %q", s)
}

// parseWindow accepts the paper's window names or a Go duration.
func parseWindow(s string) (time.Duration, error) {
	switch strings.ToLower(s) {
	case "day":
		return trace.Day, nil
	case "week":
		return trace.Week, nil
	case "month":
		return trace.Month, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad window %q (use day, week, month, or a duration)", s)
	}
	if d <= 0 || d > 10*365*trace.Day {
		return 0, fmt.Errorf("window %v out of range", d)
	}
	return d, nil
}

func parseScope(s string) (analysis.Scope, error) {
	switch strings.ToLower(s) {
	case "node":
		return analysis.ScopeNode, nil
	case "rack":
		return analysis.ScopeRack, nil
	case "system":
		return analysis.ScopeSystem, nil
	default:
		return 0, fmt.Errorf("unknown scope %q", s)
	}
}
