package server

import (
	"container/list"
	"sync"
)

// idemCache remembers POST /v1/events responses by client-supplied
// X-Idempotency-Key so a retried request (the resilient client resends
// after a network error without knowing whether the first attempt landed)
// replays the original response instead of ingesting the events twice.
//
// The cache is a bounded in-memory LRU: replay protection is exact within
// one process lifetime and degrades to at-least-once across restarts or
// after eviction — the WAL makes duplicate observes safe, just visible in
// the observed counter.
type idemCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// idemResult is one remembered response.
type idemResult struct {
	key  string
	code int
	body []byte
}

func newIdemCache(max int) *idemCache {
	if max < 1 {
		max = 1
	}
	return &idemCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the remembered response for key, if any.
func (c *idemCache) get(key string) (idemResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return idemResult{}, false
	}
	c.order.MoveToFront(el)
	return *el.Value.(*idemResult), true
}

// put remembers a response, evicting the least recently used entry past
// the size bound. A key already present keeps its first response: the
// first attempt's outcome is the one retries must see.
func (c *idemCache) put(key string, code int, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.order.PushFront(&idemResult{key: key, code: code, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*idemResult).key)
	}
}
