package server

import (
	"container/list"
	"sync"
)

// idemCache makes POST /v1/events retries safe under a client-supplied
// X-Idempotency-Key: the first request to present a key owns it, and every
// later request with the same key replays the owner's recorded response
// instead of ingesting the events again. Ownership is reserved atomically
// at request start, so two concurrent duplicates can never both ingest —
// the loser waits on the owner's outcome (see handleEvents), closing the
// check-then-act window a get/put API would leave.
//
// Completed responses live in a bounded LRU: replay protection is exact
// within one process lifetime and degrades to at-least-once across
// restarts or after eviction — the WAL makes duplicate observes safe,
// just visible in the observed counter. In-flight reservations are not
// evictable; their population is bounded by the route's admission limit.
type idemCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // completed responses
	order   *list.List               // front = most recently used
	pending map[string]*idemPending  // reserved, outcome not yet recorded
}

// idemResult is one remembered response.
type idemResult struct {
	key  string
	code int
	body []byte
}

// idemPending is a key reservation. done is closed when the owner records
// a response (ok=true, res valid) or abandons the key (ok=false) — waiters
// then re-begin: replaying the result or taking ownership themselves.
type idemPending struct {
	done chan struct{}
	res  idemResult
	ok   bool
}

// beginState is the outcome of reserving a key.
type beginState int

const (
	// idemOwned: the caller holds the key and must complete or abandon it.
	idemOwned beginState = iota
	// idemHit: a completed response exists; replay it.
	idemHit
	// idemWait: another request holds the key; wait on pending.done.
	idemWait
)

func newIdemCache(max int) *idemCache {
	if max < 1 {
		max = 1
	}
	return &idemCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		pending: make(map[string]*idemPending),
	}
}

// begin atomically resolves a key: a recorded response (idemHit), an
// in-flight reservation to wait on (idemWait), or a fresh reservation the
// caller now owns (idemOwned).
func (c *idemCache) begin(key string) (idemResult, *idemPending, beginState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return *el.Value.(*idemResult), nil, idemHit
	}
	if p, ok := c.pending[key]; ok {
		return idemResult{}, p, idemWait
	}
	p := &idemPending{done: make(chan struct{})}
	c.pending[key] = p
	return idemResult{}, p, idemOwned
}

// complete records the owner's response, evicting the least recently used
// entry past the size bound, and wakes waiters to replay it.
func (c *idemCache) complete(key string, p *idemPending, code int, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, key)
	p.res = idemResult{key: key, code: code, body: body}
	p.ok = true
	close(p.done)
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.order.PushFront(&idemResult{key: key, code: code, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*idemResult).key)
	}
}

// abandon releases a reservation without recording a response (the request
// died before reaching an outcome worth replaying); waiters re-contend.
func (c *idemCache) abandon(key string, p *idemPending) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, key)
	close(p.done)
}
