// Comparative analytics across named datasets: GET /v1/rates renders one
// dataset's failure-rate and lift tables, and GET /v1/compare/{condprob,
// rates} runs the same computation against several registered datasets,
// pinning one snapshot per dataset and diffing the results against the
// first-named baseline. Each per-dataset result reuses the exact cache
// keys and compute path of the plain endpoints, so a compare side is
// bit-identical to querying that dataset alone.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/registry"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// ratesQuery is the parsed form of a /v1/rates query: the window and scope
// feed the per-category lift cells (conditional-vs-baseline follow-up
// factors), mirroring /v1/condprob semantics.
type ratesQuery struct {
	window time.Duration
	scope  analysis.Scope
}

func parseRatesQuery(raw string) (ratesQuery, error) {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return ratesQuery{}, fmt.Errorf("bad query string: %w", err)
	}
	q := ratesQuery{window: trace.Week, scope: analysis.ScopeNode}
	for key, vs := range vals {
		if len(vs) != 1 {
			return ratesQuery{}, fmt.Errorf("parameter %q repeated", key)
		}
		v := vs[0]
		switch key {
		case "window":
			if q.window, err = parseWindow(v); err != nil {
				return ratesQuery{}, err
			}
		case "scope":
			if q.scope, err = parseScope(v); err != nil {
				return ratesQuery{}, err
			}
		default:
			return ratesQuery{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return q, nil
}

// rateJSON is an event count normalized per node-year.
type rateJSON struct {
	Count       int     `json:"count"`
	PerNodeYear float64 `json:"per_node_year"`
}

// categoryRateJSON is one root-cause category's share of the failure rate.
type categoryRateJSON struct {
	Category    string  `json:"category"`
	Count       int     `json:"count"`
	PerNodeYear float64 `json:"per_node_year"`
	Share       float64 `json:"share"`
}

// systemRateJSON is one system's failure rate.
type systemRateJSON struct {
	System      int     `json:"system"`
	Nodes       int     `json:"nodes"`
	NodeYears   float64 `json:"node_years"`
	Count       int     `json:"count"`
	PerNodeYear float64 `json:"per_node_year"`
}

// liftCellJSON is one category's follow-up lift: how much more likely any
// failure is within the window after seeing that category, versus baseline.
type liftCellJSON struct {
	Anchor      string  `json:"anchor"`
	Factor      float64 `json:"factor"`
	FactorLo    float64 `json:"factor_lo"`
	FactorHi    float64 `json:"factor_hi"`
	Significant bool    `json:"significant_5pct"`
}

// ratesJSON is the /v1/rates response body.
type ratesJSON struct {
	DatasetVersion uint64             `json:"dataset_version"`
	Window         string             `json:"window"`
	Scope          string             `json:"scope"`
	NodeYears      float64            `json:"node_years"`
	Events         int                `json:"events"`
	Overall        rateJSON           `json:"overall"`
	Categories     []categoryRateJSON `json:"categories"`
	PerSystem      []systemRateJSON   `json:"per_system"`
	Lift           []liftCellJSON     `json:"lift"`
}

func (s *Server) handleRates(w http.ResponseWriter, r *http.Request) {
	q, err := parseRatesQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := s.ratesBody(r.Context(), q)
	if err != nil {
		s.writeBodyError(w, err)
		return
	}
	w.Header().Set("X-Dataset-Version", strconv.FormatUint(body.DatasetVersion, 10))
	s.writeJSON(w, http.StatusOK, body)
}

// writeBodyError maps a rates/condprob body-computation error onto HTTP: a
// down or slow shard (and a timed-out compute) is retryable 503, anything
// else is a 500.
func (s *Server) writeBodyError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShardDown) || errors.Is(err, errShardSlow) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.shardUnavailable(w, err)
		return
	}
	s.writeError(w, http.StatusInternalServerError, err)
}

// ratesPart is one shard's contribution to the rate tables.
type ratesPart struct {
	version uint64
	events  int
	cats    map[trace.Category]int
	sys     map[int]int
}

// ratesBody computes the failure-rate and lift tables over one pinned
// snapshot per shard. Unlike the query endpoints it is strict: any shard
// failing fails the whole call, because a comparative answer built on a
// partial count would silently compare unlike denominators.
func (s *Server) ratesBody(ctx context.Context, q ratesQuery) (ratesJSON, error) {
	f := s.fabric
	idxs := f.allShards()
	parts, errs := scatterShards(ctx, f, idxs, func(k, i int, st *store.Store, eng *risk.Engine) (ratesPart, error) {
		snap := st.Snapshot()
		p := ratesPart{
			version: snap.Version(),
			cats:    make(map[trace.Category]int),
			sys:     make(map[int]int),
		}
		ds := snap.Dataset()
		p.events = len(ds.Failures)
		for _, fe := range ds.Failures {
			p.cats[fe.Category]++
			p.sys[fe.System]++
		}
		return p, nil
	})
	merged := ratesPart{cats: make(map[trace.Category]int), sys: make(map[int]int)}
	for k, err := range errs {
		if err != nil {
			return ratesJSON{}, fmt.Errorf("rates: %w", err)
		}
		p := parts[k]
		merged.version = max(merged.version, p.version)
		merged.events += p.events
		for c, n := range p.cats {
			merged.cats[c] += n
		}
		for id, n := range p.sys {
			merged.sys[id] += n
		}
	}

	const daysPerYear = 365.25
	nodeYears := 0.0
	for _, sys := range f.fleet {
		nodeYears += sys.NodeDays() / daysPerYear
	}
	perNY := func(count int) float64 {
		if nodeYears == 0 {
			return 0
		}
		return float64(count) / nodeYears
	}
	out := ratesJSON{
		DatasetVersion: merged.version,
		Window:         trace.WindowName(q.window),
		Scope:          q.scope.String(),
		NodeYears:      nodeYears,
		Events:         merged.events,
		Overall:        rateJSON{Count: merged.events, PerNodeYear: finite(perNY(merged.events))},
		Categories:     []categoryRateJSON{},
		PerSystem:      []systemRateJSON{},
		Lift:           []liftCellJSON{},
	}
	// Every category is emitted (zero counts included) in the catalog's
	// fixed order, so comparative diffs align category lists by index.
	for _, cat := range trace.Categories {
		n := merged.cats[cat]
		share := 0.0
		if merged.events > 0 {
			share = float64(n) / float64(merged.events)
		}
		out.Categories = append(out.Categories, categoryRateJSON{
			Category:    cat.String(),
			Count:       n,
			PerNodeYear: finite(perNY(n)),
			Share:       finite(share),
		})
	}
	for _, sys := range f.fleet {
		ny := sys.NodeDays() / daysPerYear
		n := merged.sys[sys.ID]
		rate := 0.0
		if ny > 0 {
			rate = float64(n) / ny
		}
		out.PerSystem = append(out.PerSystem, systemRateJSON{
			System:      sys.ID,
			Nodes:       sys.Nodes,
			NodeYears:   ny,
			Count:       n,
			PerNodeYear: finite(rate),
		})
	}
	// The lift table runs one condprob per category through the exact
	// compute-and-cache path /v1/condprob uses, so its cells agree with the
	// standalone endpoint bit for bit.
	for _, cat := range trace.Categories {
		cq := condProbQuery{anchor: cat.String(), window: q.window, scope: q.scope}
		res, err := s.condProbBody(ctx, cq)
		if err != nil {
			return ratesJSON{}, fmt.Errorf("rates: lift %s: %w", cat, err)
		}
		out.Lift = append(out.Lift, liftCellJSON{
			Anchor:      cq.anchor,
			Factor:      res.Factor,
			FactorLo:    res.FactorLo,
			FactorHi:    res.FactorHi,
			Significant: res.Significant,
		})
	}
	return out, nil
}

// condProbBody answers one canonical condprob query as a value, through the
// same shard routing, snapshot pinning, cache keys and breaker gates as the
// /v1/condprob handler — the comparative endpoints' guarantee that each
// side matches the standalone answer rests on this sharing. Unlike the
// handler's scatter it is strict: a missing shard part fails the call
// instead of degrading to a partial.
func (s *Server) condProbBody(ctx context.Context, q condProbQuery) (condProbJSON, error) {
	f := s.fabric
	if f.n() == 1 {
		return s.condProbCached(ctx, q, 0)
	}
	involved := f.involvedShards(q.group)
	switch len(involved) {
	case 0:
		return s.condProbResponse(q, f.maxVersion(), analysis.MergeCondResults(q.window, q.scope, nil)), nil
	case 1:
		return s.condProbCached(ctx, q, involved[0])
	}
	versions := make([]uint64, len(involved))
	parts, errs := scatterShards(ctx, f, involved, func(k, i int, st *store.Store, eng *risk.Engine) (analysis.CondResult, error) {
		sh := f.shards[i]
		snap := st.Snapshot()
		versions[k] = snap.Version()
		key := fmt.Sprintf("part|s%d.g%d.v%d|%s", i, sh.gen.Load(), snap.Version(), q.Key())
		if val, ok := s.cache.Get(key); ok {
			return val.(analysis.CondResult), nil
		}
		if !sh.breaker.allow() {
			return analysis.CondResult{}, fmt.Errorf("shard %d condprob circuit open", i)
		}
		computed := false
		val, _, err := s.cache.Do(key, func() (any, error) {
			computed = true
			cctx, cancel := context.WithTimeout(s.base, s.timeout)
			defer cancel()
			return s.computeCondPart(cctx, snap, q)
		})
		if computed {
			sh.breaker.report(err == nil)
		}
		if err != nil {
			return analysis.CondResult{}, err
		}
		return val.(analysis.CondResult), nil
	})
	var ok []analysis.CondResult
	var version uint64
	for k, err := range errs {
		if err != nil {
			return condProbJSON{}, err
		}
		ok = append(ok, parts[k])
		version = max(version, versions[k])
	}
	return s.condProbResponse(q, version, analysis.MergeCondResults(q.window, q.scope, ok)), nil
}

// condProbCached is the one-shard slice of condProbBody: pin a snapshot,
// consult the shared result cache under the handler's exact key, and only
// compute (breaker-gated, under the lifecycle context) on a miss.
func (s *Server) condProbCached(ctx context.Context, q condProbQuery, idx int) (condProbJSON, error) {
	f := s.fabric
	if st := f.sup.State(idx); st != store.ShardReady {
		return condProbJSON{}, fmt.Errorf("%w: shard %d %s", errShardDown, idx, st)
	}
	sh := f.shards[idx]
	st, _, _ := sh.view()
	snap := st.Snapshot()
	key := fmt.Sprintf("s%d.g%d.v%d|%s", idx, sh.gen.Load(), snap.Version(), q.Key())
	if val, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		return val.(condProbJSON), nil
	}
	if !sh.breaker.allow() {
		s.metrics.degraded.Add(1)
		return condProbJSON{}, fmt.Errorf("condprob compute circuit open")
	}
	computed := false
	val, oc, err := s.cache.Do(key, func() (any, error) {
		computed = true
		cctx, cancel := context.WithTimeout(s.base, s.timeout)
		defer cancel()
		return s.computeCondProb(cctx, snap, q)
	})
	if computed {
		sh.breaker.report(err == nil)
	}
	switch oc {
	case outcomeHit:
		s.metrics.cacheHits.Add(1)
	case outcomeShared:
		s.metrics.cacheMisses.Add(1)
		s.metrics.shared.Add(1)
	default:
		s.metrics.cacheMisses.Add(1)
	}
	if err != nil {
		return condProbJSON{}, err
	}
	return val.(condProbJSON), nil
}

// maxCompareDatasets bounds one comparative query's fan-out.
const maxCompareDatasets = 8

// parseCompareDatasets pulls the datasets= list (comma-separated canonical
// names, 2..8, no duplicates) out of a compare query.
func parseCompareDatasets(vals url.Values) ([]string, error) {
	vs := vals["datasets"]
	if len(vs) != 1 {
		return nil, fmt.Errorf("pass exactly one datasets= parameter (comma-separated names)")
	}
	raw := strings.Split(vs[0], ",")
	if len(raw) < 2 {
		return nil, fmt.Errorf("compare needs at least 2 datasets, got %d", len(raw))
	}
	if len(raw) > maxCompareDatasets {
		return nil, fmt.Errorf("compare accepts at most %d datasets, got %d", maxCompareDatasets, len(raw))
	}
	names := make([]string, 0, len(raw))
	seen := make(map[string]bool, len(raw))
	for _, v := range raw {
		canon, err := registry.Canonical(v)
		if err != nil {
			return nil, err
		}
		if seen[canon] {
			return nil, fmt.Errorf("dataset %q listed twice", canon)
		}
		seen[canon] = true
		names = append(names, canon)
	}
	return names, nil
}

// compareVersionsHeader renders the per-dataset pinned versions, in request
// order, as "a:3,b:5".
func compareVersionsHeader(names []string, versions map[string]uint64) string {
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", name, versions[name])
	}
	return b.String()
}

// condProbDiffJSON compares one dataset's condprob result to the baseline
// (first-named) dataset's.
type condProbDiffJSON struct {
	Dataset          string  `json:"dataset"`
	Baseline         string  `json:"baseline"`
	FactorRatio      float64 `json:"factor_ratio"`
	ConditionalRatio float64 `json:"conditional_ratio"`
	BaselineRatio    float64 `json:"baseline_ratio"`
	BothSignificant  bool    `json:"both_significant"`
}

// compareCondProbJSON is the /v1/compare/condprob response body.
type compareCondProbJSON struct {
	Datasets []string                `json:"datasets"`
	Anchor   string                  `json:"anchor"`
	Target   string                  `json:"target"`
	Window   string                  `json:"window"`
	Scope    string                  `json:"scope"`
	Group    int                     `json:"group"`
	Results  map[string]condProbJSON `json:"results"`
	Diff     []condProbDiffJSON      `json:"diff"`
}

// safeRatio returns b/a guarded for comparative tables: two zeros agree
// (ratio 1), a zero denominator with a nonzero numerator saturates.
func safeRatio(b, a float64) float64 {
	if a == 0 {
		if b == 0 {
			return 1
		}
		return math.MaxFloat64
	}
	return finite(b / a)
}

func (s *Server) handleCompareCondProb(w http.ResponseWriter, r *http.Request) {
	vals, err := url.ParseQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad query string: %w", err))
		return
	}
	names, err := parseCompareDatasets(vals)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	vals.Del("datasets")
	q, err := parseCondProbQuery(vals.Encode())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	results := make(map[string]condProbJSON, len(names))
	versions := make(map[string]uint64, len(names))
	for _, name := range names {
		ts, release, err := s.acquireTenant(r, name)
		if err != nil {
			s.writeTenantError(w, name, err)
			return
		}
		res, err := ts.condProbBody(r.Context(), q)
		release()
		if err != nil {
			s.writeBodyError(w, fmt.Errorf("dataset %s: %w", name, err))
			return
		}
		results[name] = res
		versions[name] = res.DatasetVersion
	}
	w.Header().Set("X-Compare-Versions", compareVersionsHeader(names, versions))
	base := results[names[0]]
	diffs := make([]condProbDiffJSON, 0, len(names)-1)
	for _, name := range names[1:] {
		res := results[name]
		diffs = append(diffs, condProbDiffJSON{
			Dataset:          name,
			Baseline:         names[0],
			FactorRatio:      safeRatio(res.Factor, base.Factor),
			ConditionalRatio: safeRatio(res.Conditional.P, base.Conditional.P),
			BaselineRatio:    safeRatio(res.Baseline.P, base.Baseline.P),
			BothSignificant:  res.Significant && base.Significant,
		})
	}
	s.writeJSON(w, http.StatusOK, compareCondProbJSON{
		Datasets: names,
		Anchor:   q.anchor,
		Target:   q.target,
		Window:   trace.WindowName(q.window),
		Scope:    q.scope.String(),
		Group:    q.group,
		Results:  results,
		Diff:     diffs,
	})
}

// categoryRateDiffJSON compares one category's failure rate across two
// datasets.
type categoryRateDiffJSON struct {
	Category  string  `json:"category"`
	BaseRate  float64 `json:"base_per_node_year"`
	OtherRate float64 `json:"other_per_node_year"`
	Ratio     float64 `json:"ratio"`
}

// liftDiffJSON compares one anchor category's follow-up lift factor across
// two datasets.
type liftDiffJSON struct {
	Anchor      string  `json:"anchor"`
	BaseFactor  float64 `json:"base_factor"`
	OtherFactor float64 `json:"other_factor"`
	Ratio       float64 `json:"ratio"`
}

// ratesDiffJSON compares one dataset's rate tables to the baseline's.
type ratesDiffJSON struct {
	Dataset      string                 `json:"dataset"`
	Baseline     string                 `json:"baseline"`
	OverallRatio float64                `json:"overall_ratio"`
	Categories   []categoryRateDiffJSON `json:"categories"`
	Lift         []liftDiffJSON         `json:"lift"`
}

// compareRatesJSON is the /v1/compare/rates response body.
type compareRatesJSON struct {
	Datasets []string             `json:"datasets"`
	Window   string               `json:"window"`
	Scope    string               `json:"scope"`
	Results  map[string]ratesJSON `json:"results"`
	Diff     []ratesDiffJSON      `json:"diff"`
}

// ratioSortKey orders diff rows by how far the ratio is from parity, in
// log space so 2x and 0.5x rank equally.
func ratioSortKey(r float64) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	return math.Abs(math.Log(r))
}

func (s *Server) handleCompareRates(w http.ResponseWriter, r *http.Request) {
	vals, err := url.ParseQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad query string: %w", err))
		return
	}
	names, err := parseCompareDatasets(vals)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	vals.Del("datasets")
	q, err := parseRatesQuery(vals.Encode())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	results := make(map[string]ratesJSON, len(names))
	versions := make(map[string]uint64, len(names))
	for _, name := range names {
		ts, release, err := s.acquireTenant(r, name)
		if err != nil {
			s.writeTenantError(w, name, err)
			return
		}
		res, err := ts.ratesBody(r.Context(), q)
		release()
		if err != nil {
			s.writeBodyError(w, fmt.Errorf("dataset %s: %w", name, err))
			return
		}
		results[name] = res
		versions[name] = res.DatasetVersion
	}
	w.Header().Set("X-Compare-Versions", compareVersionsHeader(names, versions))
	base := results[names[0]]
	diffs := make([]ratesDiffJSON, 0, len(names)-1)
	for _, name := range names[1:] {
		res := results[name]
		d := ratesDiffJSON{
			Dataset:      name,
			Baseline:     names[0],
			OverallRatio: safeRatio(res.Overall.PerNodeYear, base.Overall.PerNodeYear),
		}
		// Category and lift rows align by index: both sides emit the full
		// catalog in the same fixed order.
		for i, bc := range base.Categories {
			oc := res.Categories[i]
			d.Categories = append(d.Categories, categoryRateDiffJSON{
				Category:  bc.Category,
				BaseRate:  bc.PerNodeYear,
				OtherRate: oc.PerNodeYear,
				Ratio:     safeRatio(oc.PerNodeYear, bc.PerNodeYear),
			})
		}
		for i, bl := range base.Lift {
			ol := res.Lift[i]
			d.Lift = append(d.Lift, liftDiffJSON{
				Anchor:      bl.Anchor,
				BaseFactor:  bl.Factor,
				OtherFactor: ol.Factor,
				Ratio:       safeRatio(ol.Factor, bl.Factor),
			})
		}
		sort.SliceStable(d.Categories, func(i, j int) bool {
			ki, kj := ratioSortKey(d.Categories[i].Ratio), ratioSortKey(d.Categories[j].Ratio)
			if ki != kj {
				return ki > kj
			}
			return d.Categories[i].Category < d.Categories[j].Category
		})
		sort.SliceStable(d.Lift, func(i, j int) bool {
			ki, kj := ratioSortKey(d.Lift[i].Ratio), ratioSortKey(d.Lift[j].Ratio)
			if ki != kj {
				return ki > kj
			}
			return d.Lift[i].Anchor < d.Lift[j].Anchor
		})
		diffs = append(diffs, d)
	}
	s.writeJSON(w, http.StatusOK, compareRatesJSON{
		Datasets: names,
		Window:   trace.WindowName(q.window),
		Scope:    q.scope.String(),
		Results:  results,
		Diff:     diffs,
	})
}
