package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of computed /v1/condprob responses with
// singleflight semantics: concurrent requests for the same key block on one
// computation instead of each recomputing the (dataset-scan-heavy)
// conditional probability. The dataset is immutable, so entries never go
// stale and eviction is purely a size bound.
type resultCache struct {
	mu       sync.Mutex
	max      int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flightCall
}

type cacheEntry struct {
	key string
	val any
}

// flightCall is one in-flight computation other requests can wait on.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:      max,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flightCall),
	}
}

// outcome reports how a Do call was satisfied.
type outcome int

const (
	outcomeHit    outcome = iota // served from cache
	outcomeMiss                  // computed by this call
	outcomeShared                // waited on another call's computation
)

// Get returns the cached value for key without computing anything — the
// degraded path the circuit breaker falls back to while compute is
// disabled.
func (c *resultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Do returns the cached value for key, or computes it exactly once across
// concurrent callers. Errors are not cached: a failed computation leaves the
// key absent so the next request retries.
func (c *resultCache) Do(key string, compute func() (any, error)) (any, outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, outcomeHit, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.val, outcomeShared, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.val, call.err = compute()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: call.val})
		for c.order.Len() > c.max {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return call.val, outcomeMiss, call.err
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
