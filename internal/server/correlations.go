// Correlation-rule and vicinity-anomaly serving: GET /v1/correlations and
// GET /v1/anomalies over internal/correlate, under the same serving
// discipline as /v1/condprob — pinned snapshots, version-prefixed cache
// keys, admission + breaker gating, and sharded scatter-gather with exact
// integer merges (correlate.MergeRuleCounts) and explicit partials.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/correlate"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// correlationsQuery is the parsed, canonicalized form of a /v1/correlations
// query.
type correlationsQuery struct {
	window        time.Duration
	scope         analysis.Scope
	system        int // 0 = all systems
	minSupport    int64
	minConfidence float64
}

// Key returns the canonical cache key: two requests that mean the same
// query map to the same key regardless of parameter order, and re-parsing a
// key yields the same key (the fuzz target pins the fixed point).
func (q correlationsQuery) Key() string {
	return fmt.Sprintf("window=%s&scope=%s&system=%d&min_support=%d&min_confidence=%s",
		q.window, q.scope, q.system, q.minSupport,
		strconv.FormatFloat(q.minConfidence, 'g', -1, 64))
}

// parseCorrelationsQuery parses a raw /v1/correlations query string.
// Defaults are the week window at node scope with the correlate package's
// rule thresholds; unknown and repeated parameters are rejected.
func parseCorrelationsQuery(raw string) (correlationsQuery, error) {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return correlationsQuery{}, fmt.Errorf("bad query string: %w", err)
	}
	q := correlationsQuery{
		window:        trace.Week,
		scope:         analysis.ScopeNode,
		minSupport:    correlate.DefaultMinSupport,
		minConfidence: correlate.DefaultMinConfidence,
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		vs := vals[key]
		if len(vs) != 1 {
			return correlationsQuery{}, fmt.Errorf("parameter %q repeated", key)
		}
		v := vs[0]
		switch key {
		case "window":
			if q.window, err = parseWindow(v); err != nil {
				return correlationsQuery{}, err
			}
		case "scope":
			if q.scope, err = parseScope(v); err != nil {
				return correlationsQuery{}, err
			}
		case "system":
			q.system, err = strconv.Atoi(v)
			if err != nil || q.system < 0 {
				return correlationsQuery{}, fmt.Errorf("bad system %q", v)
			}
		case "min_support":
			q.minSupport, err = strconv.ParseInt(v, 10, 64)
			if err != nil || q.minSupport < 1 {
				return correlationsQuery{}, fmt.Errorf("min_support must be a positive integer, got %q", v)
			}
		case "min_confidence":
			q.minConfidence, err = strconv.ParseFloat(v, 64)
			if err != nil || math.IsNaN(q.minConfidence) || q.minConfidence <= 0 || q.minConfidence > 1 {
				return correlationsQuery{}, fmt.Errorf("min_confidence must be in (0, 1], got %q", v)
			}
		default:
			return correlationsQuery{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return q, nil
}

// anomaliesQuery is the parsed form of a /v1/anomalies query.
type anomaliesQuery struct {
	system int // 0 = all systems
	k      int
}

func (q anomaliesQuery) Key() string {
	return fmt.Sprintf("system=%d&k=%d", q.system, q.k)
}

// defaultAnomalyK bounds /v1/anomalies output when no k is given.
const defaultAnomalyK = 20

func parseAnomaliesQuery(raw string) (anomaliesQuery, error) {
	vals, err := url.ParseQuery(raw)
	if err != nil {
		return anomaliesQuery{}, fmt.Errorf("bad query string: %w", err)
	}
	q := anomaliesQuery{k: defaultAnomalyK}
	for key, vs := range vals {
		if len(vs) != 1 {
			return anomaliesQuery{}, fmt.Errorf("parameter %q repeated", key)
		}
		v := vs[0]
		switch key {
		case "system":
			q.system, err = strconv.Atoi(v)
			if err != nil || q.system < 0 {
				return anomaliesQuery{}, fmt.Errorf("bad system %q", v)
			}
		case "k":
			q.k, err = strconv.Atoi(v)
			if err != nil || q.k < 1 {
				return anomaliesQuery{}, fmt.Errorf("k must be a positive integer, got %q", v)
			}
			if q.k > maxTopK {
				q.k = maxTopK
			}
		default:
			return anomaliesQuery{}, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return q, nil
}

// ruleJSON is one correlation rule on the wire.
type ruleJSON struct {
	Anchor     string  `json:"anchor"`
	Target     string  `json:"target"`
	Scope      string  `json:"scope"`
	Support    int64   `json:"support"`
	Anchors    int64   `json:"anchors"`
	Confidence float64 `json:"confidence"`
	Lift       float64 `json:"lift"`
}

// correlationsJSON is the /v1/correlations response body.
type correlationsJSON struct {
	Window         string     `json:"window"`
	Scope          string     `json:"scope"`
	System         int        `json:"system"`
	MinSupport     int64      `json:"min_support"`
	MinConfidence  float64    `json:"min_confidence"`
	DatasetVersion uint64     `json:"dataset_version"`
	Events         int64      `json:"events"`
	Rules          []ruleJSON `json:"rules"`
}

// anomaliesJSON is the /v1/anomalies response body.
type anomaliesJSON struct {
	System         int                 `json:"system"`
	K              int                 `json:"k"`
	DatasetVersion uint64              `json:"dataset_version"`
	Anomalies      []correlate.Anomaly `json:"anomalies"`
}

// checkCorrelationWindow rejects windows no shard's miner maintains before
// any compute happens: the incremental counts exist only for the configured
// windows, and a typo'd window should fail loudly, not mine from scratch.
func (s *Server) checkCorrelationWindow(w time.Duration) error {
	ws := s.fabric.shards[0].getMiner().Windows()
	names := make([]string, 0, len(ws))
	for _, u := range ws {
		if u == w {
			return nil
		}
		names = append(names, trace.WindowName(u))
	}
	return fmt.Errorf("window %s is not maintained by the correlation miner (configured: %v)", trace.WindowName(w), names)
}

func (s *Server) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	q, err := parseCorrelationsQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkCorrelationWindow(q.window); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	f := s.fabric
	if q.system != 0 {
		if _, ok := f.fleetSystem(q.system); !ok {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown system %d", q.system))
			return
		}
		owner, _ := f.ownerOf(q.system)
		s.correlationsSingle(w, q, owner)
		return
	}
	if f.n() == 1 {
		s.correlationsSingle(w, q, 0)
		return
	}
	s.correlationsScatter(w, r, q, f.allShards())
}

// correlationsSingle answers a correlations query entirely from one shard —
// the single-shard server's whole path, and the owner path for per-system
// queries. The structure mirrors condProbSingle: pin a snapshot, key the
// cache by shard/generation/version, serve hits regardless of breaker
// state, gate only misses on the breaker.
func (s *Server) correlationsSingle(w http.ResponseWriter, q correlationsQuery, idx int) {
	f := s.fabric
	if st := f.sup.State(idx); st != store.ShardReady {
		s.shardUnavailable(w, fmt.Errorf("%w: shard %d %s", errShardDown, idx, st))
		return
	}
	sh := f.shards[idx]
	st, _, _ := sh.view()
	snap := st.Snapshot()
	setVersion(w, snap)
	key := fmt.Sprintf("corr|s%d.g%d.v%d|%s", idx, sh.gen.Load(), snap.Version(), q.Key())
	if val, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		if open, _ := sh.breaker.snapshot(); open {
			s.metrics.degraded.Add(1)
			w.Header().Set("X-Degraded", "cache-only")
		}
		s.writeJSON(w, http.StatusOK, val)
		return
	}
	if !sh.breaker.allow() {
		s.metrics.degraded.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("X-Degraded", "circuit-open")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("correlations compute circuit open"))
		return
	}
	computed := false
	val, oc, err := s.cache.Do(key, func() (any, error) {
		computed = true
		ctx, cancel := context.WithTimeout(s.base, s.timeout)
		defer cancel()
		return s.computeCorrelations(ctx, sh, q)
	})
	switch oc {
	case outcomeHit:
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	case outcomeShared:
		s.metrics.cacheMisses.Add(1)
		s.metrics.shared.Add(1)
		w.Header().Set("X-Cache", "SHARED")
	default:
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	if computed {
		sh.breaker.report(err == nil)
	}
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	// The miner pins its own snapshot inside the compute; if an append raced
	// in between our pin and the mine, the answer reflects the newer (never
	// an older) version — restamp the header with the version actually
	// answered so it always tells the truth.
	if body, ok := val.(correlationsJSON); ok {
		w.Header().Set("X-Dataset-Version", strconv.FormatUint(body.DatasetVersion, 10))
	}
	s.writeJSON(w, http.StatusOK, val)
}

// correlationsScatter answers a fleet-wide correlations query across
// shards: each shard mines (or serves from cache) its partition's integer
// rule counts, and correlate.MergeRuleCounts combines them into exactly the
// counts one miner over the union would produce. Per-shard parts are cached
// and breaker-gated independently; a down shard degrades the answer to an
// explicit partial instead of failing it.
func (s *Server) correlationsScatter(w http.ResponseWriter, r *http.Request, q correlationsQuery, involved []int) {
	f := s.fabric
	versions := make([]uint64, len(involved))
	hits := make([]bool, len(involved))
	parts, errs := scatterShards(r.Context(), f, involved, func(k, i int, st *store.Store, _ *risk.Engine) (correlate.RuleCounts, error) {
		sh := f.shards[i]
		snap := st.Snapshot()
		versions[k] = snap.Version()
		key := fmt.Sprintf("corrpart|s%d.g%d.v%d|%s", i, sh.gen.Load(), snap.Version(), q.Key())
		if val, ok := s.cache.Get(key); ok {
			hits[k] = true
			return val.(correlate.RuleCounts), nil
		}
		if !sh.breaker.allow() {
			return correlate.RuleCounts{}, fmt.Errorf("shard %d correlations circuit open", i)
		}
		computed := false
		val, _, err := s.cache.Do(key, func() (any, error) {
			computed = true
			ctx, cancel := context.WithTimeout(s.base, s.timeout)
			defer cancel()
			return s.computeRulePart(ctx, sh, q)
		})
		if computed {
			sh.breaker.report(err == nil)
		}
		if err != nil {
			return correlate.RuleCounts{}, err
		}
		return val.(correlate.RuleCounts), nil
	})
	var ok []correlate.RuleCounts
	allHit := true
	for k, err := range errs {
		if err != nil {
			continue
		}
		ok = append(ok, parts[k])
		if !hits[k] {
			allHit = false
		}
	}
	if len(ok) == 0 {
		s.shardUnavailable(w, fmt.Errorf("no shard available for correlations"))
		return
	}
	if allHit {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	} else {
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	s.stampPartial(w, involved, versions, errs)
	var version uint64
	for k, err := range errs {
		if err == nil {
			version = max(version, versions[k])
		}
	}
	s.writeJSON(w, http.StatusOK, s.correlationsResponse(q, version, correlate.MergeRuleCounts(q.window, ok)))
}

// computeRulePart mines one shard's partition for the query window — the
// raw integer RuleCounts that cross shard boundaries and merge exactly. The
// mine runs under the shared analysis pool like every other kernel.
func (s *Server) computeRulePart(ctx context.Context, sh *shard, q correlationsQuery) (correlate.RuleCounts, error) {
	m := sh.getMiner()
	var rc correlate.RuleCounts
	err := analysis.Shared().Do(ctx, func() error {
		var ok bool
		if q.system != 0 {
			rc, _, ok = m.Mine(q.window, q.system)
		} else {
			rc, _, ok = m.Mine(q.window)
		}
		if !ok {
			return fmt.Errorf("window %s not maintained by the correlation miner", trace.WindowName(q.window))
		}
		return nil
	})
	if err != nil {
		return correlate.RuleCounts{}, err
	}
	return rc, nil
}

// computeCorrelations is the single-shard compute: mine, then render. The
// miner catches up on any events appended since the last query before
// counting, so a freshly POSTed event is reflected in this very answer.
func (s *Server) computeCorrelations(ctx context.Context, sh *shard, q correlationsQuery) (correlationsJSON, error) {
	m := sh.getMiner()
	var rc correlate.RuleCounts
	var snap *store.Snapshot
	err := analysis.Shared().Do(ctx, func() error {
		var ok bool
		if q.system != 0 {
			rc, snap, ok = m.Mine(q.window, q.system)
		} else {
			rc, snap, ok = m.Mine(q.window)
		}
		if !ok {
			return fmt.Errorf("window %s not maintained by the correlation miner", trace.WindowName(q.window))
		}
		return nil
	})
	if err != nil {
		return correlationsJSON{}, err
	}
	return s.correlationsResponse(q, snap.Version(), rc), nil
}

// correlationsResponse derives the thresholded rule graph from (possibly
// merged) integer counts and renders the wire body.
func (s *Server) correlationsResponse(q correlationsQuery, version uint64, rc correlate.RuleCounts) correlationsJSON {
	agg := rc.Aggregate()
	body := correlationsJSON{
		Window:         trace.WindowName(q.window),
		Scope:          q.scope.String(),
		System:         q.system,
		MinSupport:     q.minSupport,
		MinConfidence:  q.minConfidence,
		DatasetVersion: version,
		Events:         agg.Total,
		Rules:          []ruleJSON{},
	}
	for _, rule := range agg.Rules(q.scope, q.minSupport, q.minConfidence) {
		body.Rules = append(body.Rules, ruleJSON{
			Anchor:     rule.Anchor.String(),
			Target:     rule.Target.String(),
			Scope:      rule.Scope.String(),
			Support:    rule.Support,
			Anchors:    rule.Anchors,
			Confidence: finite(rule.Confidence),
			Lift:       finite(rule.Lift),
		})
	}
	return body
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	q, err := parseAnomaliesQuery(r.URL.RawQuery)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	f := s.fabric
	if q.system != 0 {
		if _, ok := f.fleetSystem(q.system); !ok {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown system %d", q.system))
			return
		}
		owner, _ := f.ownerOf(q.system)
		s.anomaliesSingle(w, q, owner)
		return
	}
	if f.n() == 1 {
		s.anomaliesSingle(w, q, 0)
		return
	}
	s.anomaliesScatter(w, r, q, f.allShards())
}

// anomaliesSingle scores one shard's nodes against their vicinities over a
// pinned snapshot — a pure function of the snapshot, cached and gated
// exactly like condProbSingle.
func (s *Server) anomaliesSingle(w http.ResponseWriter, q anomaliesQuery, idx int) {
	f := s.fabric
	if st := f.sup.State(idx); st != store.ShardReady {
		s.shardUnavailable(w, fmt.Errorf("%w: shard %d %s", errShardDown, idx, st))
		return
	}
	sh := f.shards[idx]
	st, _, _ := sh.view()
	snap := st.Snapshot()
	setVersion(w, snap)
	key := fmt.Sprintf("anom|s%d.g%d.v%d|%s", idx, sh.gen.Load(), snap.Version(), q.Key())
	if val, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		if open, _ := sh.breaker.snapshot(); open {
			s.metrics.degraded.Add(1)
			w.Header().Set("X-Degraded", "cache-only")
		}
		s.writeJSON(w, http.StatusOK, val)
		return
	}
	if !sh.breaker.allow() {
		s.metrics.degraded.Add(1)
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("X-Degraded", "circuit-open")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("anomalies compute circuit open"))
		return
	}
	computed := false
	val, oc, err := s.cache.Do(key, func() (any, error) {
		computed = true
		ctx, cancel := context.WithTimeout(s.base, s.timeout)
		defer cancel()
		return s.computeAnomalies(ctx, snap, q)
	})
	switch oc {
	case outcomeHit:
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	case outcomeShared:
		s.metrics.cacheMisses.Add(1)
		s.metrics.shared.Add(1)
		w.Header().Set("X-Cache", "SHARED")
	default:
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	if computed {
		sh.breaker.report(err == nil)
	}
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		s.writeError(w, code, err)
		return
	}
	s.writeJSON(w, http.StatusOK, val)
}

// anomaliesScatter fans a fleet-wide anomaly query out to every shard: each
// scores its own nodes and returns its top k, and the union re-sorts under
// the detector's exact order — the global top k is always contained in the
// union of per-shard top k lists, so per-shard truncation loses nothing.
func (s *Server) anomaliesScatter(w http.ResponseWriter, r *http.Request, q anomaliesQuery, involved []int) {
	f := s.fabric
	versions := make([]uint64, len(involved))
	hits := make([]bool, len(involved))
	parts, errs := scatterShards(r.Context(), f, involved, func(k, i int, st *store.Store, _ *risk.Engine) ([]correlate.Anomaly, error) {
		sh := f.shards[i]
		snap := st.Snapshot()
		versions[k] = snap.Version()
		key := fmt.Sprintf("anompart|s%d.g%d.v%d|%s", i, sh.gen.Load(), snap.Version(), q.Key())
		if val, ok := s.cache.Get(key); ok {
			hits[k] = true
			return val.([]correlate.Anomaly), nil
		}
		if !sh.breaker.allow() {
			return nil, fmt.Errorf("shard %d anomalies circuit open", i)
		}
		computed := false
		val, _, err := s.cache.Do(key, func() (any, error) {
			computed = true
			ctx, cancel := context.WithTimeout(s.base, s.timeout)
			defer cancel()
			body, cerr := s.computeAnomalies(ctx, snap, q)
			if cerr != nil {
				return nil, cerr
			}
			return body.Anomalies, nil
		})
		if computed {
			sh.breaker.report(err == nil)
		}
		if err != nil {
			return nil, err
		}
		return val.([]correlate.Anomaly), nil
	})
	merged := []correlate.Anomaly{}
	anyOK := false
	allHit := true
	for k, err := range errs {
		if err != nil {
			continue
		}
		anyOK = true
		merged = append(merged, parts[k]...)
		if !hits[k] {
			allHit = false
		}
	}
	if !anyOK {
		s.shardUnavailable(w, fmt.Errorf("no shard available for anomalies"))
		return
	}
	if allHit {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "HIT")
	} else {
		s.metrics.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "MISS")
	}
	correlate.SortAnomalies(merged)
	if len(merged) > q.k {
		merged = merged[:q.k]
	}
	s.stampPartial(w, involved, versions, errs)
	var version uint64
	for k, err := range errs {
		if err == nil {
			version = max(version, versions[k])
		}
	}
	s.writeJSON(w, http.StatusOK, anomaliesJSON{System: q.system, K: q.k, DatasetVersion: version, Anomalies: merged})
}

// computeAnomalies runs the vicinity detector over one pinned snapshot.
func (s *Server) computeAnomalies(ctx context.Context, snap *store.Snapshot, q anomaliesQuery) (anomaliesJSON, error) {
	var systems []int
	if q.system != 0 {
		systems = []int{q.system}
	}
	out := []correlate.Anomaly{}
	err := analysis.Shared().Do(ctx, func() error {
		if got := correlate.DetectAnomalies(snap.Analyzer(), systems, q.k); got != nil {
			out = got
		}
		return nil
	})
	if err != nil {
		return anomaliesJSON{}, err
	}
	return anomaliesJSON{System: q.system, K: q.k, DatasetVersion: snap.Version(), Anomalies: out}, nil
}
