package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hpcfail/hpcfail/internal/iofault"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// newReadOnlyTestServer builds a journal-backed server whose WAL sits on a
// fault-injecting filesystem, with space probing un-throttled so recovery
// is deterministic in-process.
func newReadOnlyTestServer(t *testing.T) (*httptest.Server, *iofault.Inject) {
	t.Helper()
	ds := testDS()
	engine, err := risk.FromDataset(ds, trace.Day)
	if err != nil {
		t.Fatal(err)
	}
	inj := iofault.NewInject(iofault.Disk, iofault.InjectSpec{})
	j, _, err := risk.OpenJournal(risk.JournalConfig{
		Engine: engine,
		WAL:    wal.Options{Dir: t.TempDir()},
		FS:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	clock := &fakeClock{t: day(100)}
	s, err := New(Config{
		Dataset:            ds,
		Window:             trace.Day,
		Journal:            j,
		Now:                clock.Now,
		SpaceProbeInterval: -1, // probe on every gated attempt
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, inj
}

// TestDiskFullEntersReadOnly: an ENOSPC WAL append latches the server into
// sticky read-only mode — writes get 503 with Retry-After and X-Read-Only,
// reads keep serving, /readyz reports "read-only" — and clearing the fault
// lets the next write probe its way back to normal service.
func TestDiskFullEntersReadOnly(t *testing.T) {
	ts, inj := newReadOnlyTestServer(t)

	if resp, b := postEvents(t, ts.URL, `{"events":[{"system":1,"node":0,"category":"HW","hw":"CPU"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest = %d; body: %s", resp.StatusCode, b)
	}

	inj.SetDiskFull(true)

	// First write after the fault hits the append path and latches the mode.
	resp, body := postEvents(t, ts.URL, `{"events":[{"system":1,"node":1,"category":"SW","sw":"OS"}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-full ingest = %d, want 503; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Read-Only") != "true" {
		t.Errorf("disk-full 503 missing X-Read-Only header; got %q", resp.Header.Get("X-Read-Only"))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("disk-full 503 missing Retry-After")
	}

	// Subsequent writes are rejected at the gate, before touching the WAL.
	resp, _ = postEvents(t, ts.URL, `{"events":[{"system":1,"node":2,"category":"NET"}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated ingest = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Read-Only") != "true" {
		t.Error("gated 503 missing X-Read-Only header")
	}

	// Reads keep serving while writes are rejected.
	getJSON(t, ts.URL+"/v1/risk/top?k=2", http.StatusOK, nil)

	var ready map[string]any
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready["status"] != "read-only" {
		t.Errorf("readyz status = %v, want read-only", ready["status"])
	}

	metrics := string(fetchMetrics(t, ts))
	for _, want := range []string{
		"hpcserve_read_only 1",
		"hpcserve_read_only_entries_total 1",
		"hpcserve_read_only_rejects_total 1",
		`hpcserve_shard_disk_full{shard="0"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("read-only metrics missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(metrics, "hpcserve_wal_append_errors_total") {
		t.Errorf("metrics missing wal append error counter:\n%s", metrics)
	}

	// Space comes back: the next write probes, clears the latch, and lands.
	inj.SetDiskFull(false)
	if resp, b := postEvents(t, ts.URL, `{"events":[{"system":1,"node":3,"category":"HW","hw":"CPU"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest = %d, want 200; body: %s", resp.StatusCode, b)
	}

	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready["status"] != "ready" {
		t.Errorf("recovered readyz status = %v, want ready", ready["status"])
	}
	metrics = string(fetchMetrics(t, ts))
	if !strings.Contains(metrics, "hpcserve_read_only 0") {
		t.Errorf("recovered metrics still read-only:\n%s", metrics)
	}

	// The durable record holds both healthy ingests and nothing phantom: a
	// fresh recovery from the same WAL dir would see exactly 2 appends.
	var snap struct {
		Observed uint64 `json:"observed"`
	}
	getJSON(t, ts.URL+"/v1/snapshot", http.StatusOK, &snap)
	if snap.Observed == 0 {
		t.Error("snapshot lost acked events")
	}
}

// TestDiskFullIdempotencyNotPoisoned: an ENOSPC failure with zero events
// accepted must NOT be recorded under the idempotency key — the client's
// retry after space recovers should re-contend and succeed, not replay 503.
func TestDiskFullIdempotencyNotPoisoned(t *testing.T) {
	ts, inj := newReadOnlyTestServer(t)

	inj.SetDiskFull(true)
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/events",
			strings.NewReader(`{"events":[{"system":1,"node":1,"category":"SW","sw":"OS"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Idempotency-Key", "enospc-retry")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-full ingest = %d, want 503", resp.StatusCode)
	}
	inj.SetDiskFull(false)
	if resp := post(); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried ingest after recovery = %d, want 200 (503 must not be replayed)", resp.StatusCode)
	}
}
