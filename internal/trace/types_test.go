package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCategoryStringsAndParse(t *testing.T) {
	for _, c := range Categories {
		parsed, err := ParseCategory(c.String())
		if err != nil {
			t.Errorf("ParseCategory(%q): %v", c.String(), err)
			continue
		}
		if parsed != c {
			t.Errorf("roundtrip %v -> %q -> %v", c, c.String(), parsed)
		}
	}
	// Lowercase long names parse too.
	if c, err := ParseCategory("hardware"); err != nil || c != Hardware {
		t.Errorf("ParseCategory(hardware) = %v, %v", c, err)
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("bogus category should fail")
	}
}

func TestHWComponentRoundtrip(t *testing.T) {
	for _, c := range HWComponents {
		parsed, err := ParseHWComponent(c.String())
		if err != nil || parsed != c {
			t.Errorf("roundtrip %v: got %v, %v", c, parsed, err)
		}
	}
	if c, err := ParseHWComponent(""); err != nil || c != HWUnknown {
		t.Error("empty component should parse to HWUnknown")
	}
	if _, err := ParseHWComponent("Flux"); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestSWClassRoundtrip(t *testing.T) {
	for _, c := range SWClasses {
		parsed, err := ParseSWClass(c.String())
		if err != nil || parsed != c {
			t.Errorf("roundtrip %v: got %v, %v", c, parsed, err)
		}
	}
	if c, err := ParseSWClass(""); err != nil || c != SWUnknown {
		t.Error("empty class should parse to SWUnknown")
	}
}

func TestEnvClassRoundtrip(t *testing.T) {
	for _, c := range EnvClasses {
		parsed, err := ParseEnvClass(c.String())
		if err != nil || parsed != c {
			t.Errorf("roundtrip %v: got %v, %v", c, parsed, err)
		}
	}
}

func TestGroupString(t *testing.T) {
	if Group1.String() != "group-1" || Group2.String() != "group-2" {
		t.Error("group names wrong")
	}
	if Group(9).String() == "" {
		t.Error("unknown group should still render")
	}
}

func TestSubtypeLabel(t *testing.T) {
	cases := []struct {
		f    Failure
		want string
	}{
		{Failure{Category: Hardware, HW: Memory}, "Memory"},
		{Failure{Category: Hardware}, "HW"},
		{Failure{Category: Software, SW: DST}, "DST"},
		{Failure{Category: Environment, Env: PowerOutage}, "PowerOutage"},
		{Failure{Category: Network}, "NET"},
	}
	for _, c := range cases {
		if got := c.f.SubtypeLabel(); got != c.want {
			t.Errorf("SubtypeLabel = %q, want %q", got, c.want)
		}
	}
}

func TestJobDerived(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	j := Job{
		Procs:    8,
		Dispatch: base,
		End:      base.Add(12 * time.Hour),
	}
	if j.Runtime() != 12*time.Hour {
		t.Errorf("runtime = %v", j.Runtime())
	}
	if got, want := j.ProcDays(), 8*0.5; got != want {
		t.Errorf("procdays = %g, want %g", got, want)
	}
	// Malformed: end before dispatch.
	bad := Job{Procs: 4, Dispatch: base, End: base.Add(-time.Hour)}
	if bad.Runtime() != 0 || bad.ProcDays() != 0 {
		t.Error("inverted job should have zero runtime")
	}
}

func TestInterval(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	iv := Interval{Start: base, End: base.Add(time.Hour)}
	if !iv.Contains(base) {
		t.Error("interval should contain its start")
	}
	if iv.Contains(base.Add(time.Hour)) {
		t.Error("right-open interval must exclude its end")
	}
	if iv.Duration() != time.Hour {
		t.Errorf("duration = %v", iv.Duration())
	}
	inverted := Interval{Start: base.Add(time.Hour), End: base}
	if inverted.Duration() != 0 {
		t.Error("inverted interval duration should be 0")
	}
	other := Interval{Start: base.Add(30 * time.Minute), End: base.Add(2 * time.Hour)}
	if !iv.Overlaps(other) || !other.Overlaps(iv) {
		t.Error("overlapping intervals not detected")
	}
	disjoint := Interval{Start: base.Add(2 * time.Hour), End: base.Add(3 * time.Hour)}
	if iv.Overlaps(disjoint) {
		t.Error("disjoint intervals reported overlapping")
	}
	// Adjacent intervals do not overlap (right-open).
	adjacent := Interval{Start: base.Add(time.Hour), End: base.Add(2 * time.Hour)}
	if iv.Overlaps(adjacent) {
		t.Error("adjacent right-open intervals must not overlap")
	}
}

func TestIntervalOverlapSymmetryProperty(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(a1, a2, b1, b2 int16) bool {
		mk := func(x, y int16) Interval {
			lo, hi := int(x), int(y)
			if lo > hi {
				lo, hi = hi, lo
			}
			return Interval{Start: base.Add(time.Duration(lo) * time.Minute), End: base.Add(time.Duration(hi) * time.Minute)}
		}
		p, q := mk(a1, a2), mk(b1, b2)
		return p.Overlaps(q) == q.Overlaps(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWindowName(t *testing.T) {
	if WindowName(Day) != "day" || WindowName(Week) != "week" || WindowName(Month) != "month" {
		t.Error("standard window names wrong")
	}
	if WindowName(2*time.Hour) != "2h0m0s" {
		t.Errorf("custom window name = %q", WindowName(2*time.Hour))
	}
}

func TestSystemInfoDerived(t *testing.T) {
	s := SystemInfo{
		Nodes: 10, ProcsPerNode: 4,
		Period: Interval{
			Start: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
			End:   time.Date(2000, 1, 11, 0, 0, 0, 0, time.UTC),
		},
	}
	if s.Procs() != 40 {
		t.Errorf("procs = %d", s.Procs())
	}
	if s.NodeDays() != 100 {
		t.Errorf("node-days = %g", s.NodeDays())
	}
}
