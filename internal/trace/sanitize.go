package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hpcfail/hpcfail/internal/layout"
	"github.com/hpcfail/hpcfail/internal/validate"
)

// This file is the dataset validation/repair engine: tolerant CSV decoding
// with line-anchored diagnostics, cross-record sanitation (duplicates,
// overlapping outages, dangling references), and the policy-aware directory
// loader. The strict readers in codec.go stay byte-compatible with old
// datasets; everything here is for field data that is not guaranteed clean.

// DecodeFailuresCSV reads a failures CSV stream under a validation policy.
// It never panics on arbitrary input. Under Strict the first problem aborts
// with an error; under Lenient broken rows are skipped with one diagnostic
// each; under Repair near-miss timestamps are coerced, out-of-range
// downtimes clamped, and stray subtype labels zeroed. It returns the decoded
// failures, the 1-based CSV line of each, and the report.
func DecodeFailuresCSV(r io.Reader, p validate.Policy) ([]Failure, []int, *validate.Report, error) {
	rep := &validate.Report{}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = p.Mode != validate.Strict
	var out []Failure
	var lines []int
	first := true
	lastOffset := int64(-1)
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, lines, rep, nil
		}
		if err != nil {
			if p.Mode == validate.Strict {
				return nil, nil, rep, fmt.Errorf("%s: %w", FailuresFile, err)
			}
			line := 0
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				line = pe.StartLine
			}
			rep.Scan(FailuresFile, 1)
			rep.Skip(FailuresFile)
			rep.Add(validate.Diagnostic{
				File: FailuresFile, Line: line, Class: validate.BadRow,
				Severity: validate.Error, Msg: err.Error(),
			})
			if cr.InputOffset() == lastOffset {
				// The reader cannot advance past this error; stop rather
				// than report it forever.
				return out, lines, rep, nil
			}
			lastOffset = cr.InputOffset()
			continue
		}
		lastOffset = cr.InputOffset()
		line, _ := cr.FieldPos(0)
		junk := false
		for i := range rec {
			clean, scrubbed := validate.ScrubField(rec[i])
			rec[i] = strings.TrimSpace(clean)
			junk = junk || scrubbed
		}
		if first {
			first = false
			if len(rec) > 0 && strings.EqualFold(rec[0], "system") {
				continue // header row
			}
		}
		rep.Scan(FailuresFile, 1)
		rowRepaired := false
		if junk {
			d := validate.Diagnostic{
				File: FailuresFile, Line: line, Class: validate.EncodingJunk,
				Severity: validate.Warning, Repaired: p.Mode == validate.Repair,
				Msg: "BOM or control bytes scrubbed from record",
			}
			if p.Mode == validate.Strict {
				return nil, nil, rep, fmt.Errorf("%s:%d: %s", FailuresFile, line, d.Msg)
			}
			rowRepaired = rowRepaired || d.Repaired
			rep.Add(d)
		}
		if len(rec) != 8 {
			d := validate.Diagnostic{
				File: FailuresFile, Line: line, Class: validate.BadRow,
				Severity: validate.Error,
				Msg:      fmt.Sprintf("want 8 fields, got %d", len(rec)),
			}
			if p.Mode == validate.Strict {
				return nil, nil, rep, fmt.Errorf("%s:%d: %s", FailuresFile, line, d.Msg)
			}
			rep.Skip(FailuresFile)
			rep.Add(d)
			continue
		}
		f, diags := parseFailureLenient(rec, p)
		dead := false
		for _, d := range diags {
			d.File, d.Line = FailuresFile, line
			if d.Severity == validate.Error {
				dead = true
				if p.Mode == validate.Strict {
					return nil, nil, rep, fmt.Errorf("%s:%d: [%s] %s", FailuresFile, line, d.Class, d.Msg)
				}
			}
			rowRepaired = rowRepaired || d.Repaired
			rep.Add(d)
		}
		if dead {
			rep.Skip(FailuresFile)
			continue
		}
		if rowRepaired {
			rep.Repair(FailuresFile)
		}
		out = append(out, f)
		lines = append(lines, line)
	}
}

// parseFailureLenient parses one 8-field failure row, classifying every
// problem. Under Repair it coerces what the repair set allows; the row is
// unusable iff any returned diagnostic has Error severity.
func parseFailureLenient(rec []string, p validate.Policy) (Failure, []validate.Diagnostic) {
	var f Failure
	var ds []validate.Diagnostic
	fail := func(c validate.Class, format string, args ...any) {
		ds = append(ds, validate.Diagnostic{Class: c, Severity: validate.Error, Msg: fmt.Sprintf(format, args...)})
	}
	repaired := func(c validate.Class, format string, args ...any) {
		ds = append(ds, validate.Diagnostic{Class: c, Severity: validate.Warning, Repaired: true, Msg: fmt.Sprintf(format, args...)})
	}
	var err error
	if f.System, err = strconv.Atoi(rec[0]); err != nil {
		fail(validate.BadField, "system: %v", err)
	}
	if f.Node, err = strconv.Atoi(rec[1]); err != nil {
		fail(validate.BadField, "node: %v", err)
	}
	timeOK := false
	if f.Time, err = time.Parse(timeLayout, rec[2]); err == nil {
		timeOK = true
	} else if p.Mode == validate.Repair {
		if t, _, cerr := validate.CoerceTime(rec[2], timeLayout); cerr == nil {
			f.Time = t
			timeOK = true
			repaired(validate.BadTimestamp, "coerced non-canonical timestamp %q", rec[2])
		} else {
			fail(validate.BadTimestamp, "unparseable timestamp %q", rec[2])
		}
	} else {
		fail(validate.BadTimestamp, "unparseable timestamp %q", rec[2])
	}
	if timeOK && !p.InRange(f.Time) {
		fail(validate.TimestampOutOfRange, "timestamp %s outside plausible epoch [%s, %s)",
			f.Time.Format(timeLayout), p.MinTime.Format(timeLayout), p.MaxTime.Format(timeLayout))
	}
	catOK := false
	if f.Category, err = ParseCategory(rec[3]); err != nil {
		fail(validate.BadField, "category: %v", err)
	} else {
		catOK = true
	}
	subtype := func(name string, parse func() error, clear func(), set func() bool, want Category) {
		if err := parse(); err != nil {
			if p.Mode == validate.Repair {
				clear()
				repaired(validate.BadField, "%s: %v; subtype dropped", name, err)
			} else {
				fail(validate.BadField, "%s: %v", name, err)
			}
			return
		}
		if catOK && set() && f.Category != want {
			if p.Mode == validate.Repair {
				clear()
				repaired(validate.BadField, "%s subtype on %s failure dropped", name, f.Category)
			} else {
				fail(validate.BadField, "%s subtype on %s failure", name, f.Category)
			}
		}
	}
	subtype("hw", func() (e error) { f.HW, e = ParseHWComponent(rec[4]); return },
		func() { f.HW = HWUnknown }, func() bool { return f.HW != HWUnknown }, Hardware)
	subtype("sw", func() (e error) { f.SW, e = ParseSWClass(rec[5]); return },
		func() { f.SW = SWUnknown }, func() bool { return f.SW != SWUnknown }, Software)
	subtype("env", func() (e error) { f.Env, e = ParseEnvClass(rec[6]); return },
		func() { f.Env = EnvUnknown }, func() bool { return f.Env != EnvUnknown }, Environment)
	secs, err := strconv.ParseInt(rec[7], 10, 64)
	if err != nil {
		if fsecs, ferr := strconv.ParseFloat(rec[7], 64); ferr == nil && p.Mode == validate.Repair {
			secs = int64(fsecs)
			repaired(validate.BadField, "coerced fractional downtime %q", rec[7])
		} else {
			fail(validate.BadField, "downtime: %v", err)
			return f, ds
		}
	}
	f.Downtime = time.Duration(secs) * time.Second
	if f.Downtime < 0 {
		if p.Mode == validate.Repair {
			f.Downtime = 0
			repaired(validate.NegativeDowntime, "negative downtime %ds clamped to 0", secs)
		} else {
			fail(validate.NegativeDowntime, "negative downtime %ds", secs)
		}
	} else if p.AbsurdDowntime > 0 && f.Downtime > p.AbsurdDowntime {
		if p.Mode == validate.Repair {
			f.Downtime = p.AbsurdDowntime
			repaired(validate.AbsurdDowntime, "downtime %ds clamped to %s", secs, p.AbsurdDowntime)
		} else {
			fail(validate.AbsurdDowntime, "absurd downtime %ds (limit %s)", secs, p.AbsurdDowntime)
		}
	}
	return f, ds
}

// SanitizeFailures applies the cross-record checks: references against the
// system catalog (nil disables them), exact duplicates, and overlapping
// outages of one node. file names the source table for diagnostics and
// budget tallies; lines anchors diagnostics to CSV lines (nil for in-memory
// data). Repair merges duplicates and truncates the earlier of two
// overlapping outages; Lenient skips the offending later record; Strict
// fails on the first finding. The input slice is not modified.
func SanitizeFailures(file string, failures []Failure, lines []int, systems []SystemInfo, p validate.Policy, rep *validate.Report) ([]Failure, error) {
	lineOf := func(i int) int {
		if lines != nil && i < len(lines) {
			return lines[i]
		}
		return 0
	}
	problem := func(i int, c validate.Class, repairable bool, format string, args ...any) error {
		d := validate.Diagnostic{
			File: file, Line: lineOf(i), Class: c,
			Severity: validate.Error, Msg: fmt.Sprintf(format, args...),
		}
		if p.Mode == validate.Strict {
			return fmt.Errorf("%s:%d: [%s] %s", file, d.Line, c, d.Msg)
		}
		if p.Mode == validate.Repair && repairable {
			d.Severity = validate.Warning
			d.Repaired = true
			rep.Repair(file)
		} else {
			rep.Skip(file)
		}
		rep.Add(d)
		return nil
	}

	fs := append([]Failure(nil), failures...)
	keep := make([]bool, len(fs))
	var catalog map[int]int
	if systems != nil {
		catalog = make(map[int]int, len(systems))
		for _, s := range systems {
			catalog[s.ID] = s.Nodes
		}
	}
	seen := make(map[Failure]int, len(fs))
	for i, f := range fs {
		if catalog != nil {
			nodes, ok := catalog[f.System]
			if !ok {
				if err := problem(i, validate.UnknownSystem, false, "references unknown system %d", f.System); err != nil {
					return nil, err
				}
				continue
			}
			if f.Node < 0 || f.Node >= nodes {
				if err := problem(i, validate.UnknownNode, false, "node %d out of range [0,%d) for system %d", f.Node, nodes, f.System); err != nil {
					return nil, err
				}
				continue
			}
		}
		if j, dup := seen[f]; dup {
			if err := problem(i, validate.DuplicateRecord, true, "exact duplicate of line %d", lineOf(j)); err != nil {
				return nil, err
			}
			continue
		}
		seen[f] = i
		keep[i] = true
	}

	// Overlap resolution per node, in time order (line order breaks ties so
	// the later row is always the one reported).
	byNode := make(map[NodeKey][]int)
	for i, ok := range keep {
		if ok {
			k := NodeKey{System: fs[i].System, Node: fs[i].Node}
			byNode[k] = append(byNode[k], i)
		}
	}
	for _, idxs := range byNode {
		sort.Slice(idxs, func(a, b int) bool {
			fa, fb := fs[idxs[a]], fs[idxs[b]]
			if !fa.Time.Equal(fb.Time) {
				return fa.Time.Before(fb.Time)
			}
			return lineOf(idxs[a]) < lineOf(idxs[b])
		})
		prev := -1
		for _, i := range idxs {
			if prev < 0 {
				prev = i
				continue
			}
			cur := fs[i]
			pf := fs[prev]
			sameStart := cur.Time.Equal(pf.Time)
			overlaps := pf.Downtime > 0 && cur.Time.Before(pf.Time.Add(pf.Downtime))
			if !sameStart && !overlaps {
				prev = i
				continue
			}
			switch {
			case p.Mode == validate.Repair && !sameStart:
				// Truncate the earlier outage so the two no longer overlap.
				fs[prev].Downtime = cur.Time.Sub(pf.Time)
				if err := problem(i, validate.OverlappingOutage, true, "overlapped outage at line %d truncated to %s", lineOf(prev), fs[prev].Downtime); err != nil {
					return nil, err
				}
				prev = i
			case p.Mode == validate.Repair:
				// Same start instant: keep the earlier row, drop this one.
				keep[i] = false
				if err := problem(i, validate.OverlappingOutage, true, "outage starts at the same instant as line %d; merged", lineOf(prev)); err != nil {
					return nil, err
				}
			case sameStart:
				// Two outages of one node starting at the same instant is a
				// data-entry artifact: Strict fails, Lenient skips the later
				// row.
				keep[i] = false
				if err := problem(i, validate.OverlappingOutage, false, "outage starts at the same instant as line %d on system %d node %d", lineOf(prev), cur.System, cur.Node); err != nil {
					return nil, err
				}
			default:
				// A node failing again while still down is physically
				// plausible (a second problem logged during the repair), so
				// Strict and Lenient keep both records and warn.
				rep.Add(validate.Diagnostic{
					File: file, Line: lineOf(i), Class: validate.OverlappingOutage,
					Severity: validate.Warning,
					Msg:      fmt.Sprintf("outage overlaps line %d on system %d node %d", lineOf(prev), cur.System, cur.Node),
				})
				prev = i
			}
		}
	}

	out := make([]Failure, 0, len(fs))
	for i, ok := range keep {
		if ok {
			out = append(out, fs[i])
		}
	}
	return out, nil
}

// ValidateFailuresCSV decodes a failures CSV stream, sanitizes it against
// the given system catalog (nil skips reference checks), and enforces the
// policy's error budget. The returned failures are non-nil-safe to use even
// when the budget error is returned.
func ValidateFailuresCSV(r io.Reader, systems []SystemInfo, p validate.Policy) ([]Failure, *validate.Report, error) {
	fs, lines, rep, err := DecodeFailuresCSV(r, p)
	if err != nil {
		return nil, rep, err
	}
	fs, err = SanitizeFailures(FailuresFile, fs, lines, systems, p, rep)
	if err != nil {
		return nil, rep, err
	}
	return fs, rep, p.CheckBudget(rep)
}

// SanitizeDataset validates an in-memory dataset under a policy: failures
// get the full cross-record treatment (duplicates, overlaps, references,
// downtime clamps are already a parse-time concern and are not re-checked
// here), and jobs, temperature and maintenance records referencing unknown
// systems or out-of-range nodes are dropped with diagnostics. It returns a
// sanitized copy, leaving the input unmodified.
func SanitizeDataset(ds *Dataset, p validate.Policy) (*Dataset, *validate.Report, error) {
	rep := &validate.Report{}
	out := &Dataset{
		Systems:  append([]SystemInfo(nil), ds.Systems...),
		Neutrons: append([]NeutronSample(nil), ds.Neutrons...),
		Layouts:  make(map[int]*layout.Layout, len(ds.Layouts)),
	}
	for id, l := range ds.Layouts {
		out.Layouts[id] = l
	}
	rep.Scan(FailuresFile, len(ds.Failures))
	fs, err := SanitizeFailures(FailuresFile, ds.Failures, nil, ds.Systems, p, rep)
	if err != nil {
		return nil, rep, err
	}
	out.Failures = fs

	catalog := make(map[int]int, len(ds.Systems))
	for _, s := range ds.Systems {
		catalog[s.ID] = s.Nodes
	}
	checkRef := func(kind, file string, system, node int) error {
		nodes, ok := catalog[system]
		if !ok {
			d := validate.Diagnostic{File: file, Class: validate.UnknownSystem, Severity: validate.Error,
				Msg: fmt.Sprintf("%s record references unknown system %d", kind, system)}
			if p.Mode == validate.Strict {
				return errors.New(d.Msg)
			}
			rep.Skip(file)
			rep.Add(d)
			return errSkipRecord
		}
		if node < 0 || node >= nodes {
			d := validate.Diagnostic{File: file, Class: validate.UnknownNode, Severity: validate.Error,
				Msg: fmt.Sprintf("%s record: node %d out of range [0,%d) for system %d", kind, node, nodes, system)}
			if p.Mode == validate.Strict {
				return errors.New(d.Msg)
			}
			rep.Skip(file)
			rep.Add(d)
			return errSkipRecord
		}
		return nil
	}
	for _, j := range ds.Jobs {
		rep.Scan(JobsFile, 1)
		if _, ok := catalog[j.System]; !ok {
			if p.Mode == validate.Strict {
				return nil, rep, fmt.Errorf("job %d references unknown system %d", j.ID, j.System)
			}
			rep.Skip(JobsFile)
			rep.Add(validate.Diagnostic{File: JobsFile, Class: validate.UnknownSystem, Severity: validate.Error,
				Msg: fmt.Sprintf("job %d references unknown system %d", j.ID, j.System)})
			continue
		}
		out.Jobs = append(out.Jobs, j)
	}
	for _, t := range ds.Temps {
		rep.Scan(TempsFile, 1)
		switch err := checkRef("temperature", TempsFile, t.System, t.Node); {
		case err == errSkipRecord:
		case err != nil:
			return nil, rep, err
		default:
			out.Temps = append(out.Temps, t)
		}
	}
	for _, m := range ds.Maintenance {
		rep.Scan(MaintenanceFile, 1)
		switch err := checkRef("maintenance", MaintenanceFile, m.System, m.Node); {
		case err == errSkipRecord:
		case err != nil:
			return nil, rep, err
		default:
			out.Maintenance = append(out.Maintenance, m)
		}
	}
	out.Sort()
	return out, rep, p.CheckBudget(rep)
}

// errSkipRecord is an internal sentinel: the record was rejected and
// reported, and the caller should move on.
var errSkipRecord = errors.New("skip record")

// lenientTable reads one non-failure CSV table under a policy: the header
// row is skipped, rows with CSV-level problems are BadRow, rows the parse
// function rejects are BadField. Strict aborts on the first problem.
func lenientTable[T any](file string, r io.Reader, fields int, parse func([]string) (T, error), p validate.Policy, rep *validate.Report) ([]T, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = p.Mode != validate.Strict
	var out []T
	first := true
	lastOffset := int64(-1)
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			if p.Mode == validate.Strict {
				return nil, fmt.Errorf("%s: %w", file, err)
			}
			line := 0
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				line = pe.StartLine
			}
			rep.Scan(file, 1)
			rep.Skip(file)
			rep.Add(validate.Diagnostic{File: file, Line: line, Class: validate.BadRow,
				Severity: validate.Error, Msg: err.Error()})
			if cr.InputOffset() == lastOffset {
				return out, nil
			}
			lastOffset = cr.InputOffset()
			continue
		}
		lastOffset = cr.InputOffset()
		line, _ := cr.FieldPos(0)
		if first {
			first = false
			continue // header
		}
		rep.Scan(file, 1)
		junkRepaired := false
		if p.Mode != validate.Strict {
			junk := false
			for i := range rec {
				clean, scrubbed := validate.ScrubField(rec[i])
				rec[i] = strings.TrimSpace(clean)
				junk = junk || scrubbed
			}
			if junk {
				junkRepaired = p.Mode == validate.Repair
				rep.Add(validate.Diagnostic{File: file, Line: line, Class: validate.EncodingJunk,
					Severity: validate.Warning, Repaired: junkRepaired,
					Msg: "BOM or control bytes scrubbed from record"})
			}
		}
		if len(rec) != fields {
			if p.Mode == validate.Strict {
				return nil, fmt.Errorf("%s:%d: want %d fields, got %d", file, line, fields, len(rec))
			}
			rep.Skip(file)
			rep.Add(validate.Diagnostic{File: file, Line: line, Class: validate.BadRow,
				Severity: validate.Error, Msg: fmt.Sprintf("want %d fields, got %d", fields, len(rec))})
			continue
		}
		v, err := parse(rec)
		if err != nil {
			if p.Mode == validate.Strict {
				return nil, fmt.Errorf("%s:%d: %w", file, line, err)
			}
			rep.Skip(file)
			rep.Add(validate.Diagnostic{File: file, Line: line, Class: validate.BadField,
				Severity: validate.Error, Msg: err.Error()})
			continue
		}
		if junkRepaired {
			rep.Repair(file)
		}
		out = append(out, v)
	}
}

// LoadDirWith reads a dataset directory under a validation policy. The
// systems and failures tables are required; every other table is optional
// and degrades to an empty series with a MissingTable diagnostic. Failures
// get the full decode/sanitize treatment (including reference checks
// against the systems catalog); the remaining tables are read row-leniently
// under the same mode. A dataset is returned together with the report even
// when the error budget is exceeded, so callers can inspect what loaded.
func LoadDirWith(dir string, p validate.Policy) (*Dataset, *validate.Report, error) {
	rep := &validate.Report{}
	d := &Dataset{Layouts: make(map[int]*layout.Layout)}

	open := func(name string) (*os.File, error) { return os.Open(filepath.Join(dir, name)) }

	sf, err := open(SystemsFile)
	if err != nil {
		return nil, rep, fmt.Errorf("load dataset: %w", err)
	}
	d.Systems, err = lenientTable(SystemsFile, sf, 6, parseSystem, p, rep)
	sf.Close()
	if err != nil {
		return nil, rep, err
	}

	ff, err := open(FailuresFile)
	if err != nil {
		return nil, rep, fmt.Errorf("load dataset: %w", err)
	}
	fs, lines, frep, err := DecodeFailuresCSV(ff, p)
	ff.Close()
	rep.Merge(frep)
	if err != nil {
		return nil, rep, err
	}
	if d.Failures, err = SanitizeFailures(FailuresFile, fs, lines, d.Systems, p, rep); err != nil {
		return nil, rep, err
	}

	optional := func(name string, read func(io.Reader) error) error {
		f, err := open(name)
		if os.IsNotExist(err) {
			rep.Add(validate.Diagnostic{File: name, Class: validate.MissingTable,
				Severity: validate.Info, Msg: "optional table missing; series degrades to empty"})
			return nil
		}
		if err != nil {
			return fmt.Errorf("load dataset: %w", err)
		}
		defer f.Close()
		return read(f)
	}
	if err := optional(JobsFile, func(r io.Reader) (e error) {
		d.Jobs, e = lenientTable(JobsFile, r, 9, parseJob, p, rep)
		return
	}); err != nil {
		return nil, rep, err
	}
	if err := optional(TempsFile, func(r io.Reader) (e error) {
		d.Temps, e = lenientTable(TempsFile, r, 4, parseTemp, p, rep)
		return
	}); err != nil {
		return nil, rep, err
	}
	if err := optional(MaintenanceFile, func(r io.Reader) (e error) {
		d.Maintenance, e = lenientTable(MaintenanceFile, r, 5, parseMaintenance, p, rep)
		return
	}); err != nil {
		return nil, rep, err
	}
	if err := optional(NeutronsFile, func(r io.Reader) (e error) {
		d.Neutrons, e = lenientTable(NeutronsFile, r, 2, parseNeutron, p, rep)
		return
	}); err != nil {
		return nil, rep, err
	}

	for _, s := range d.Systems {
		path := filepath.Join(dir, LayoutFile(s.ID))
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue // layouts are optional per system, silently
		}
		if err != nil {
			return nil, rep, fmt.Errorf("load dataset: %w", err)
		}
		l, rerr := ReadLayout(f, s.ID)
		f.Close()
		if rerr != nil {
			if p.Mode == validate.Strict {
				return nil, rep, fmt.Errorf("read %s: %w", LayoutFile(s.ID), rerr)
			}
			rep.Add(validate.Diagnostic{File: LayoutFile(s.ID), Class: validate.BadRow,
				Severity: validate.Warning, Msg: fmt.Sprintf("layout unreadable, dropped: %v", rerr)})
			continue
		}
		d.Layouts[s.ID] = l
	}
	d.Sort()
	return d, rep, p.CheckBudget(rep)
}
