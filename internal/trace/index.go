package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// NodeKey identifies one node of one system.
type NodeKey struct {
	System int
	Node   int
}

// Index provides time-ordered access to a failure log by node and by
// system, with binary-search window queries. It is the workhorse behind the
// conditional-probability analyses: "did node n (or its rack, or its
// system) see a failure matching pred within window iv?".
//
// The failures slice must be sorted by time (Dataset.Sort does this); Index
// keeps references, not copies.
type Index struct {
	failures []Failure
	byNode   map[NodeKey][]int
	bySystem map[int][]int

	// extended is claimed (once, by CAS) by the first Append so only one
	// successor may grow this index's position lists into their spare
	// capacity. Readers only look at the first len elements they were
	// published with, so tail growth by the unique claim holder is safe;
	// later Appends on the same index clip capacity and reallocate instead.
	extended atomic.Bool
}

// NewIndex builds an index over failures, which must be sorted by time.
func NewIndex(failures []Failure) *Index {
	ix := &Index{
		failures: failures,
		byNode:   make(map[NodeKey][]int),
		bySystem: make(map[int][]int),
	}
	for i, f := range failures {
		k := NodeKey{f.System, f.Node}
		ix.byNode[k] = append(ix.byNode[k], i)
		ix.bySystem[f.System] = append(ix.bySystem[f.System], i)
	}
	return ix
}

// Append returns a new Index over failures, an extension of the slice this
// index was built on: the first ix.Len() elements must be the events already
// indexed (normally the same backing array with new events appended at the
// tail). Only the new tail is indexed — O(tail) plus a copy of the two
// posting maps — and the old index is never mutated. The first Append on an
// index wins its extension claim and may grow the shared position lists into
// spare capacity; any later Append on the same index clips capacity so
// growth reallocates instead of scribbling over arrays the winner owns. The
// resulting index is exactly NewIndex(failures) for a time-sorted extension,
// which callers already guarantee for NewIndex.
func (ix *Index) Append(failures []Failure) *Index {
	if len(failures) < len(ix.failures) {
		return NewIndex(failures)
	}
	inPlace := ix.extended.CompareAndSwap(false, true)
	nx := &Index{
		failures: failures,
		byNode:   make(map[NodeKey][]int, len(ix.byNode)+8),
		bySystem: make(map[int][]int, len(ix.bySystem)+1),
	}
	for k, v := range ix.byNode {
		if !inPlace {
			v = v[:len(v):len(v)]
		}
		nx.byNode[k] = v
	}
	for k, v := range ix.bySystem {
		if !inPlace {
			v = v[:len(v):len(v)]
		}
		nx.bySystem[k] = v
	}
	for i := len(ix.failures); i < len(failures); i++ {
		f := failures[i]
		k := NodeKey{f.System, f.Node}
		nx.byNode[k] = append(nx.byNode[k], i)
		nx.bySystem[f.System] = append(nx.bySystem[f.System], i)
	}
	return nx
}

// Len returns the number of indexed failures.
func (ix *Index) Len() int { return len(ix.failures) }

// Failures returns the underlying time-sorted failure slice. Callers must
// not modify it.
func (ix *Index) Failures() []Failure { return ix.failures }

// NodeCount returns the number of failures recorded for a node.
func (ix *Index) NodeCount(system, node int) int {
	return len(ix.byNode[NodeKey{system, node}])
}

// NodeFailures returns the failures of a node in time order. The returned
// slice is freshly allocated.
func (ix *Index) NodeFailures(system, node int) []Failure {
	idxs := ix.byNode[NodeKey{system, node}]
	out := make([]Failure, len(idxs))
	for i, j := range idxs {
		out[i] = ix.failures[j]
	}
	return out
}

// SystemFailures returns the failures of a system in time order. The
// returned slice is freshly allocated.
func (ix *Index) SystemFailures(system int) []Failure {
	idxs := ix.bySystem[system]
	out := make([]Failure, len(idxs))
	for i, j := range idxs {
		out[i] = ix.failures[j]
	}
	return out
}

// timeRange returns the half-open [lo,hi) positions of idxs whose failure
// times fall inside iv.
func (ix *Index) timeRange(idxs []int, iv Interval) (int, int) {
	lo := sort.Search(len(idxs), func(i int) bool {
		return !ix.failures[idxs[i]].Time.Before(iv.Start)
	})
	hi := sort.Search(len(idxs), func(i int) bool {
		return !ix.failures[idxs[i]].Time.Before(iv.End)
	})
	return lo, hi
}

// NodeAny reports whether the node has at least one failure matching pred
// inside iv.
func (ix *Index) NodeAny(system, node int, iv Interval, pred Pred) bool {
	idxs := ix.byNode[NodeKey{system, node}]
	lo, hi := ix.timeRange(idxs, iv)
	for i := lo; i < hi; i++ {
		if pred.Match(ix.failures[idxs[i]]) {
			return true
		}
	}
	return false
}

// NodeCountIn returns the number of failures of the node matching pred
// inside iv.
func (ix *Index) NodeCountIn(system, node int, iv Interval, pred Pred) int {
	idxs := ix.byNode[NodeKey{system, node}]
	lo, hi := ix.timeRange(idxs, iv)
	n := 0
	for i := lo; i < hi; i++ {
		if pred.Match(ix.failures[idxs[i]]) {
			n++
		}
	}
	return n
}

// NodesAny reports whether any of the listed nodes has a failure matching
// pred inside iv. Used for rack-level queries with the node's rack-mates.
func (ix *Index) NodesAny(system int, nodes []int, iv Interval, pred Pred) bool {
	for _, n := range nodes {
		if ix.NodeAny(system, n, iv, pred) {
			return true
		}
	}
	return false
}

// SystemAnyExcluding reports whether any node of the system other than
// exclude has a failure matching pred inside iv. Pass exclude < 0 to
// consider every node.
func (ix *Index) SystemAnyExcluding(system, exclude int, iv Interval, pred Pred) bool {
	idxs := ix.bySystem[system]
	lo, hi := ix.timeRange(idxs, iv)
	for i := lo; i < hi; i++ {
		f := ix.failures[idxs[i]]
		if f.Node == exclude {
			continue
		}
		if pred.Match(f) {
			return true
		}
	}
	return false
}

// SystemCountIn returns the number of failures in the system matching pred
// inside iv, excluding node exclude (pass exclude < 0 to count all nodes).
func (ix *Index) SystemCountIn(system, exclude int, iv Interval, pred Pred) int {
	idxs := ix.bySystem[system]
	lo, hi := ix.timeRange(idxs, iv)
	n := 0
	for i := lo; i < hi; i++ {
		f := ix.failures[idxs[i]]
		if f.Node == exclude {
			continue
		}
		if pred.Match(f) {
			n++
		}
	}
	return n
}

// JobIndex provides per-node interval queries over a job log: how many jobs
// touched a node, and whether a node was busy at a given time. It backs the
// usage analyses of Sections V and X.
type JobIndex struct {
	jobs   []Job
	byNode map[NodeKey][]int // job indices sorted by dispatch time
}

// NewJobIndex builds an index over jobs, which should be sorted by submit
// time; per-node lists are re-sorted by dispatch time.
func NewJobIndex(jobs []Job) *JobIndex {
	jx := &JobIndex{jobs: jobs, byNode: make(map[NodeKey][]int)}
	for i, j := range jobs {
		for _, n := range j.Nodes {
			k := NodeKey{j.System, n}
			jx.byNode[k] = append(jx.byNode[k], i)
		}
	}
	for _, idxs := range jx.byNode {
		sort.Slice(idxs, func(a, b int) bool {
			return jx.jobs[idxs[a]].Dispatch.Before(jx.jobs[idxs[b]].Dispatch)
		})
	}
	return jx
}

// NodeJobCount returns the number of jobs ever assigned to the node — the
// paper's num_jobs usage metric.
func (jx *JobIndex) NodeJobCount(system, node int) int {
	return len(jx.byNode[NodeKey{system, node}])
}

// NodeJobs returns the jobs assigned to a node ordered by dispatch time.
func (jx *JobIndex) NodeJobs(system, node int) []Job {
	idxs := jx.byNode[NodeKey{system, node}]
	out := make([]Job, len(idxs))
	for i, j := range idxs {
		out[i] = jx.jobs[j]
	}
	return out
}

// NodeBusyTime returns the total time within period during which at least
// one job was assigned to the node (overlapping jobs are merged), the
// numerator of the paper's utilization metric.
func (jx *JobIndex) NodeBusyTime(system, node int, period Interval) time.Duration {
	idxs := jx.byNode[NodeKey{system, node}]
	var busy time.Duration
	var curStart, curEnd time.Time
	have := false
	flush := func() {
		if have {
			busy += curEnd.Sub(curStart)
			have = false
		}
	}
	for _, i := range idxs {
		j := jx.jobs[i]
		s, e := j.Dispatch, j.End
		if s.Before(period.Start) {
			s = period.Start
		}
		if e.After(period.End) {
			e = period.End
		}
		if !e.After(s) {
			continue
		}
		if have && !s.After(curEnd) {
			if e.After(curEnd) {
				curEnd = e
			}
			continue
		}
		flush()
		curStart, curEnd = s, e
		have = true
	}
	flush()
	return busy
}

// NodeUtilization returns the fraction of period during which the node was
// busy, in [0,1] — the paper's util metric ("a node is utilized if at least
// one job is currently assigned to it").
func (jx *JobIndex) NodeUtilization(system, node int, period Interval) float64 {
	total := period.Duration()
	if total <= 0 {
		return 0
	}
	return float64(jx.NodeBusyTime(system, node, period)) / float64(total)
}

// BusyAt reports whether the node had at least one job assigned at time t.
func (jx *JobIndex) BusyAt(system, node int, t time.Time) bool {
	idxs := jx.byNode[NodeKey{system, node}]
	for _, i := range idxs {
		j := jx.jobs[i]
		if j.Dispatch.After(t) {
			break
		}
		if !t.Before(j.Dispatch) && t.Before(j.End) {
			return true
		}
	}
	return false
}
