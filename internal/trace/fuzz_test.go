package trace_test

import (
	"bytes"
	"testing"

	"github.com/hpcfail/hpcfail/internal/faultinject"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
)

// FuzzLoadFailuresCSV asserts the failure-table decoder never panics,
// whatever bytes it is handed. The corpus is seeded from the
// fault-injection harness so every corruption class the corruptor knows
// about is explored from the first iteration, plus a handful of
// structural edge cases the corruptor never emits.
func FuzzLoadFailuresCSV(f *testing.F) {
	for _, seed := range faultinject.SeedCorpus(1) {
		f.Add(seed)
	}
	f.Add([]byte(""))
	f.Add([]byte("\xEF\xBB\xBFsystem,node,time,category,hw,sw,env,downtime_s\n"))
	f.Add([]byte("system,node,time\n1,2\n\"unterminated"))
	f.Add([]byte("system,node,time,category,hw,sw,env,downtime_s\n" +
		"20,0,2004-03-01T08:00:00Z,HW,Memory,,,7200\n" +
		"20,0,2004-03-01T08:00:00Z,HW,Memory,,,7200\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range []validate.Policy{
			validate.DefaultPolicy(),
			validate.StrictPolicy(),
			validate.RepairPolicy(),
		} {
			fs, lines, rep, err := trace.DecodeFailuresCSV(bytes.NewReader(data), p)
			if err != nil {
				continue // rejecting garbage is fine; panicking is not
			}
			if len(fs) != len(lines) {
				t.Fatalf("%d failures but %d line anchors", len(fs), len(lines))
			}
			if rep == nil {
				t.Fatal("nil report without error")
			}
			if rep.Skipped > rep.Records {
				t.Fatalf("skipped %d of %d records", rep.Skipped, rep.Records)
			}
		}
	})
}
