package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/hpcfail/hpcfail/internal/layout"
	"github.com/hpcfail/hpcfail/internal/validate"
)

// The CSV codecs serialize datasets into a directory of plain CSV files,
// one per record type, with a header row. The column layout follows the
// spirit of the released LANL tables (node number, timestamps, root-cause
// fields) while staying strictly machine-readable.

const timeLayout = time.RFC3339

// File names used inside a dataset directory.
const (
	SystemsFile     = "systems.csv"
	FailuresFile    = "failures.csv"
	JobsFile        = "jobs.csv"
	TempsFile       = "temps.csv"
	MaintenanceFile = "maintenance.csv"
	NeutronsFile    = "neutrons.csv"
)

// LayoutFile returns the per-system layout file name.
func LayoutFile(system int) string {
	return fmt.Sprintf("layout_%d.csv", system)
}

func parseTime(s string) (time.Time, error) {
	t, err := time.Parse(timeLayout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("parse time %q: %w", s, err)
	}
	return t, nil
}

// WriteFailures writes failures as CSV with a header row.
func WriteFailures(w io.Writer, failures []Failure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "node", "time", "category", "hw", "sw", "env", "downtime_s"}); err != nil {
		return err
	}
	for _, f := range failures {
		hw, sw, env := "", "", ""
		if f.HW != HWUnknown {
			hw = f.HW.String()
		}
		if f.SW != SWUnknown {
			sw = f.SW.String()
		}
		if f.Env != EnvUnknown {
			env = f.Env.String()
		}
		rec := []string{
			strconv.Itoa(f.System),
			strconv.Itoa(f.Node),
			f.Time.Format(timeLayout),
			f.Category.String(),
			hw, sw, env,
			strconv.FormatInt(int64(f.Downtime/time.Second), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFailures parses CSV produced by WriteFailures.
func ReadFailures(r io.Reader) ([]Failure, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 8
	var out []Failure
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("failures line %d: %w", line+1, err)
		}
		if line == 0 {
			continue // header
		}
		f, err := parseFailure(rec)
		if err != nil {
			return nil, fmt.Errorf("failures line %d: %w", line+1, err)
		}
		out = append(out, f)
	}
}

func parseFailure(rec []string) (Failure, error) {
	var f Failure
	var err error
	if f.System, err = strconv.Atoi(rec[0]); err != nil {
		return f, fmt.Errorf("system: %w", err)
	}
	if f.Node, err = strconv.Atoi(rec[1]); err != nil {
		return f, fmt.Errorf("node: %w", err)
	}
	if f.Time, err = parseTime(rec[2]); err != nil {
		return f, err
	}
	if f.Category, err = ParseCategory(rec[3]); err != nil {
		return f, err
	}
	if f.HW, err = ParseHWComponent(rec[4]); err != nil {
		return f, err
	}
	if f.SW, err = ParseSWClass(rec[5]); err != nil {
		return f, err
	}
	if f.Env, err = ParseEnvClass(rec[6]); err != nil {
		return f, err
	}
	secs, err := strconv.ParseInt(rec[7], 10, 64)
	if err != nil {
		return f, fmt.Errorf("downtime: %w", err)
	}
	f.Downtime = time.Duration(secs) * time.Second
	return f, nil
}

// WriteJobs writes jobs as CSV with a header row. Node lists are encoded as
// space-separated IDs inside one field.
func WriteJobs(w io.Writer, jobs []Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "id", "user", "submit", "dispatch", "end", "procs", "nodes", "failed_by_node"}); err != nil {
		return err
	}
	for _, j := range jobs {
		nodes := ""
		for i, n := range j.Nodes {
			if i > 0 {
				nodes += " "
			}
			nodes += strconv.Itoa(n)
		}
		rec := []string{
			strconv.Itoa(j.System),
			strconv.FormatInt(j.ID, 10),
			strconv.Itoa(j.User),
			j.Submit.Format(timeLayout),
			j.Dispatch.Format(timeLayout),
			j.End.Format(timeLayout),
			strconv.Itoa(j.Procs),
			nodes,
			strconv.FormatBool(j.FailedByNode),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobs parses CSV produced by WriteJobs.
func ReadJobs(r io.Reader) ([]Job, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 9
	var out []Job
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("jobs line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		j, err := parseJob(rec)
		if err != nil {
			return nil, fmt.Errorf("jobs line %d: %w", line+1, err)
		}
		out = append(out, j)
	}
}

func parseJob(rec []string) (Job, error) {
	var j Job
	var err error
	if j.System, err = strconv.Atoi(rec[0]); err != nil {
		return j, fmt.Errorf("system: %w", err)
	}
	if j.ID, err = strconv.ParseInt(rec[1], 10, 64); err != nil {
		return j, fmt.Errorf("id: %w", err)
	}
	if j.User, err = strconv.Atoi(rec[2]); err != nil {
		return j, fmt.Errorf("user: %w", err)
	}
	if j.Submit, err = parseTime(rec[3]); err != nil {
		return j, err
	}
	if j.Dispatch, err = parseTime(rec[4]); err != nil {
		return j, err
	}
	if j.End, err = parseTime(rec[5]); err != nil {
		return j, err
	}
	if j.Procs, err = strconv.Atoi(rec[6]); err != nil {
		return j, fmt.Errorf("procs: %w", err)
	}
	if rec[7] != "" {
		start := 0
		s := rec[7]
		for i := 0; i <= len(s); i++ {
			if i == len(s) || s[i] == ' ' {
				if i > start {
					n, err := strconv.Atoi(s[start:i])
					if err != nil {
						return j, fmt.Errorf("nodes: %w", err)
					}
					j.Nodes = append(j.Nodes, n)
				}
				start = i + 1
			}
		}
	}
	if j.FailedByNode, err = strconv.ParseBool(rec[8]); err != nil {
		return j, fmt.Errorf("failed_by_node: %w", err)
	}
	return j, nil
}

// WriteTemps writes temperature samples as CSV with a header row.
func WriteTemps(w io.Writer, temps []TempSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "node", "time", "celsius"}); err != nil {
		return err
	}
	for _, t := range temps {
		rec := []string{
			strconv.Itoa(t.System),
			strconv.Itoa(t.Node),
			t.Time.Format(timeLayout),
			strconv.FormatFloat(t.Celsius, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTemps parses CSV produced by WriteTemps.
func ReadTemps(r io.Reader) ([]TempSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []TempSample
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("temps line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		t, err := parseTemp(rec)
		if err != nil {
			return nil, fmt.Errorf("temps line %d: %w", line+1, err)
		}
		out = append(out, t)
	}
}

func parseTemp(rec []string) (TempSample, error) {
	var t TempSample
	var err error
	if t.System, err = strconv.Atoi(rec[0]); err != nil {
		return t, fmt.Errorf("system: %w", err)
	}
	if t.Node, err = strconv.Atoi(rec[1]); err != nil {
		return t, fmt.Errorf("node: %w", err)
	}
	if t.Time, err = parseTime(rec[2]); err != nil {
		return t, err
	}
	if t.Celsius, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return t, fmt.Errorf("celsius: %w", err)
	}
	return t, nil
}

// WriteMaintenance writes maintenance events as CSV with a header row.
func WriteMaintenance(w io.Writer, events []MaintenanceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "node", "time", "scheduled", "hardware"}); err != nil {
		return err
	}
	for _, m := range events {
		rec := []string{
			strconv.Itoa(m.System),
			strconv.Itoa(m.Node),
			m.Time.Format(timeLayout),
			strconv.FormatBool(m.Scheduled),
			strconv.FormatBool(m.HardwareRelated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMaintenance parses CSV produced by WriteMaintenance.
func ReadMaintenance(r io.Reader) ([]MaintenanceEvent, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []MaintenanceEvent
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("maintenance line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		m, err := parseMaintenance(rec)
		if err != nil {
			return nil, fmt.Errorf("maintenance line %d: %w", line+1, err)
		}
		out = append(out, m)
	}
}

func parseMaintenance(rec []string) (MaintenanceEvent, error) {
	var m MaintenanceEvent
	var err error
	if m.System, err = strconv.Atoi(rec[0]); err != nil {
		return m, fmt.Errorf("system: %w", err)
	}
	if m.Node, err = strconv.Atoi(rec[1]); err != nil {
		return m, fmt.Errorf("node: %w", err)
	}
	if m.Time, err = parseTime(rec[2]); err != nil {
		return m, err
	}
	if m.Scheduled, err = strconv.ParseBool(rec[3]); err != nil {
		return m, fmt.Errorf("scheduled: %w", err)
	}
	if m.HardwareRelated, err = strconv.ParseBool(rec[4]); err != nil {
		return m, fmt.Errorf("hardware: %w", err)
	}
	return m, nil
}

// WriteNeutrons writes neutron samples as CSV with a header row.
func WriteNeutrons(w io.Writer, samples []NeutronSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "counts_per_minute"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			s.Time.Format(timeLayout),
			strconv.FormatFloat(s.CountsPerMinute, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNeutrons parses CSV produced by WriteNeutrons.
func ReadNeutrons(r io.Reader) ([]NeutronSample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var out []NeutronSample
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("neutrons line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		s, err := parseNeutron(rec)
		if err != nil {
			return nil, fmt.Errorf("neutrons line %d: %w", line+1, err)
		}
		out = append(out, s)
	}
}

func parseNeutron(rec []string) (NeutronSample, error) {
	var s NeutronSample
	var err error
	if s.Time, err = parseTime(rec[0]); err != nil {
		return s, err
	}
	if s.CountsPerMinute, err = strconv.ParseFloat(rec[1], 64); err != nil {
		return s, fmt.Errorf("counts: %w", err)
	}
	return s, nil
}

// WriteSystems writes system descriptors as CSV with a header row.
func WriteSystems(w io.Writer, systems []SystemInfo) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "group", "nodes", "procs_per_node", "start", "end"}); err != nil {
		return err
	}
	for _, s := range systems {
		rec := []string{
			strconv.Itoa(s.ID),
			strconv.Itoa(int(s.Group)),
			strconv.Itoa(s.Nodes),
			strconv.Itoa(s.ProcsPerNode),
			s.Period.Start.Format(timeLayout),
			s.Period.End.Format(timeLayout),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSystems parses CSV produced by WriteSystems.
func ReadSystems(r io.Reader) ([]SystemInfo, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	var out []SystemInfo
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("systems line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		s, err := parseSystem(rec)
		if err != nil {
			return nil, fmt.Errorf("systems line %d: %w", line+1, err)
		}
		out = append(out, s)
	}
}

func parseSystem(rec []string) (SystemInfo, error) {
	var s SystemInfo
	var err error
	if s.ID, err = strconv.Atoi(rec[0]); err != nil {
		return s, fmt.Errorf("id: %w", err)
	}
	g, err := strconv.Atoi(rec[1])
	if err != nil {
		return s, fmt.Errorf("group: %w", err)
	}
	s.Group = Group(g)
	if s.Nodes, err = strconv.Atoi(rec[2]); err != nil {
		return s, fmt.Errorf("nodes: %w", err)
	}
	if s.ProcsPerNode, err = strconv.Atoi(rec[3]); err != nil {
		return s, fmt.Errorf("procs: %w", err)
	}
	if s.Period.Start, err = parseTime(rec[4]); err != nil {
		return s, err
	}
	if s.Period.End, err = parseTime(rec[5]); err != nil {
		return s, err
	}
	return s, nil
}

// WriteLayout writes one system's layout as CSV with a header row.
func WriteLayout(w io.Writer, l *layout.Layout) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "rack", "position", "row", "aisle"}); err != nil {
		return err
	}
	for _, n := range l.Nodes() {
		p, _ := l.Place(n)
		rec := []string{
			strconv.Itoa(n),
			strconv.Itoa(p.Rack),
			strconv.Itoa(p.Position),
			strconv.Itoa(p.Row),
			strconv.Itoa(p.Aisle),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLayout parses CSV produced by WriteLayout into a layout for system.
func ReadLayout(r io.Reader, system int) (*layout.Layout, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	l := layout.New(system)
	for line := 0; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return l, nil
		}
		if err != nil {
			return nil, fmt.Errorf("layout line %d: %w", line+1, err)
		}
		if line == 0 {
			continue
		}
		vals := make([]int, 5)
		for i, s := range rec {
			if vals[i], err = strconv.Atoi(s); err != nil {
				return nil, fmt.Errorf("layout line %d field %d: %w", line+1, i, err)
			}
		}
		if err := l.SetPlace(vals[0], layout.Place{Rack: vals[1], Position: vals[2], Row: vals[3], Aisle: vals[4]}); err != nil {
			return nil, fmt.Errorf("layout line %d: %w", line+1, err)
		}
	}
}

// SaveDir writes the full dataset into a directory, one CSV file per record
// type plus one layout file per system with a layout. The directory is
// created if needed.
func SaveDir(dir string, d *Dataset) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("save dataset: %w", err)
	}
	save := func(name string, write func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", name, err)
		}
		return f.Close()
	}
	if err := save(SystemsFile, func(w io.Writer) error { return WriteSystems(w, d.Systems) }); err != nil {
		return err
	}
	if err := save(FailuresFile, func(w io.Writer) error { return WriteFailures(w, d.Failures) }); err != nil {
		return err
	}
	if err := save(JobsFile, func(w io.Writer) error { return WriteJobs(w, d.Jobs) }); err != nil {
		return err
	}
	if err := save(TempsFile, func(w io.Writer) error { return WriteTemps(w, d.Temps) }); err != nil {
		return err
	}
	if err := save(MaintenanceFile, func(w io.Writer) error { return WriteMaintenance(w, d.Maintenance) }); err != nil {
		return err
	}
	if err := save(NeutronsFile, func(w io.Writer) error { return WriteNeutrons(w, d.Neutrons) }); err != nil {
		return err
	}
	for id, l := range d.Layouts {
		lay := l
		if err := save(LayoutFile(id), func(w io.Writer) error { return WriteLayout(w, lay) }); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads a dataset directory written by SaveDir. Parsing is strict —
// any malformed record aborts the load — but missing optional tables (jobs,
// temperatures, maintenance, neutrons, layouts) degrade to empty series so
// partial datasets remain analyzable. Use LoadDirWith to choose a lenient or
// repairing policy and to inspect the diagnostics.
func LoadDir(dir string) (*Dataset, error) {
	d, _, err := LoadDirWith(dir, validate.StrictPolicy())
	if err != nil {
		return nil, err
	}
	return d, nil
}
