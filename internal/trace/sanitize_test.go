package trace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/validate"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	tm, err := time.Parse(time.RFC3339, s)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

const cleanFailures = `system,node,time,category,hw,sw,env,downtime_s
20,0,2004-03-01T08:00:00Z,HW,Memory,,,7200
20,3,2004-03-02T10:00:00Z,SW,,PFS,,2700
18,1,2004-03-03T12:00:00Z,NET,,,,1800
`

func TestDecodeFailuresCSVClean(t *testing.T) {
	fs, lines, rep, err := DecodeFailuresCSV(strings.NewReader(cleanFailures), validate.StrictPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || len(lines) != 3 {
		t.Fatalf("decoded %d failures, lines %v", len(fs), lines)
	}
	if lines[0] != 2 || lines[2] != 4 {
		t.Errorf("line anchors = %v (header is line 1)", lines)
	}
	if len(rep.Diagnostics) != 0 || rep.Records != 3 {
		t.Errorf("clean decode report: %s", rep.Summary())
	}
}

func TestDecodeFailuresCSVLenientSkips(t *testing.T) {
	in := cleanFailures +
		"20,0,not-a-time,HW,Memory,,,60\n" + // line 5: bad timestamp
		"20,0,2004-03-05T08:00:00Z,HW,Memory,,,-60\n" + // line 6: negative downtime
		"20,0,2004-03-06T08:00:00Z,HW\n" // line 7: truncated row
	fs, _, rep, err := DecodeFailuresCSV(strings.NewReader(in), validate.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("lenient decode kept %d failures, want 3", len(fs))
	}
	if rep.Skipped != 3 {
		t.Errorf("skipped = %d, want 3: %s", rep.Skipped, rep.Summary())
	}
	for _, want := range []struct {
		class validate.Class
		line  int
	}{
		{validate.BadTimestamp, 5},
		{validate.NegativeDowntime, 6},
		{validate.BadRow, 7},
	} {
		if !rep.Has(want.class, FailuresFile, want.line) {
			t.Errorf("missing %s at line %d:\n%s", want.class, want.line, rep.Summary())
		}
	}
}

func TestDecodeFailuresCSVStrictAborts(t *testing.T) {
	in := cleanFailures + "20,0,not-a-time,HW,Memory,,,60\n"
	_, _, _, err := DecodeFailuresCSV(strings.NewReader(in), validate.StrictPolicy())
	if err == nil || !strings.Contains(err.Error(), "bad-timestamp") {
		t.Fatalf("strict decode should fail on the timestamp, got %v", err)
	}
}

func TestDecodeFailuresCSVRepairs(t *testing.T) {
	in := "system,node,time,category,hw,sw,env,downtime_s\n" +
		"20,0,2004-03-01 08:00:00,HW,Memory,,,7200\n" + // non-canonical layout
		"20,1,2004-03-02T08:00:00Z,HW,Memory,,,-60\n" + // negative downtime
		"20,2,2004-03-03T08:00:00Z,HW,Memory,,,999999999\n" // absurd downtime
	fs, _, rep, err := DecodeFailuresCSV(strings.NewReader(in), validate.RepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("repair decode kept %d failures, want 3: %s", len(fs), rep.Summary())
	}
	if fs[0].Time != mustTime(t, "2004-03-01T08:00:00Z") {
		t.Errorf("coerced time = %v", fs[0].Time)
	}
	if fs[1].Downtime != 0 {
		t.Errorf("negative downtime clamped to %v, want 0", fs[1].Downtime)
	}
	if want := validate.RepairPolicy().AbsurdDowntime; fs[2].Downtime != want {
		t.Errorf("absurd downtime clamped to %v, want %v", fs[2].Downtime, want)
	}
	if rep.Repaired != 3 || rep.Skipped != 0 {
		t.Errorf("repair tallies: %s", rep.Summary())
	}
}

func TestSanitizeFailuresDuplicatesAndRefs(t *testing.T) {
	systems := []SystemInfo{{ID: 20, Nodes: 4}}
	f := Failure{System: 20, Node: 0, Time: mustTime(t, "2004-03-01T08:00:00Z"), Category: Hardware, HW: Memory}
	unknownSys := f
	unknownSys.System = 99
	unknownNode := f
	unknownNode.Node = 7
	in := []Failure{f, f, unknownSys, unknownNode}

	rep := &validate.Report{}
	out, err := SanitizeFailures(FailuresFile, in, []int{2, 3, 4, 5}, systems, validate.DefaultPolicy(), rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("kept %d failures, want 1: %s", len(out), rep.Summary())
	}
	if !rep.Has(validate.DuplicateRecord, FailuresFile, 3) ||
		!rep.Has(validate.UnknownSystem, FailuresFile, 4) ||
		!rep.Has(validate.UnknownNode, FailuresFile, 5) {
		t.Errorf("missing diagnostics:\n%s", rep.Summary())
	}
	if len(in) != 4 {
		t.Error("input slice was modified")
	}

	// Repair merges the duplicate instead of erroring.
	rep = &validate.Report{}
	out, err = SanitizeFailures(FailuresFile, []Failure{f, f}, nil, systems, validate.RepairPolicy(), rep)
	if err != nil || len(out) != 1 || rep.Repaired != 1 {
		t.Errorf("repair dedup: %d kept, err %v, %s", len(out), err, rep.Summary())
	}
}

func TestSanitizeFailuresOverlaps(t *testing.T) {
	base := mustTime(t, "2004-03-01T08:00:00Z")
	a := Failure{System: 20, Node: 0, Time: base, Category: Hardware, HW: Memory, Downtime: 4 * time.Hour}
	b := Failure{System: 20, Node: 0, Time: base.Add(time.Hour), Category: Network, Downtime: time.Hour}
	sameStart := Failure{System: 20, Node: 0, Time: base, Category: Human, Downtime: time.Hour}

	// Interval overlap: kept in Lenient with a warning.
	rep := &validate.Report{}
	out, err := SanitizeFailures(FailuresFile, []Failure{a, b}, nil, nil, validate.DefaultPolicy(), rep)
	if err != nil || len(out) != 2 {
		t.Fatalf("lenient overlap: kept %d, err %v", len(out), err)
	}
	if !rep.Has(validate.OverlappingOutage, FailuresFile, 0) || rep.Skipped != 0 {
		t.Errorf("interval overlap should warn without skipping: %s", rep.Summary())
	}

	// Interval overlap: Repair truncates the earlier downtime.
	rep = &validate.Report{}
	out, err = SanitizeFailures(FailuresFile, []Failure{a, b}, nil, nil, validate.RepairPolicy(), rep)
	if err != nil || len(out) != 2 {
		t.Fatalf("repair overlap: kept %d, err %v", len(out), err)
	}
	for _, f := range out {
		if f.Time.Equal(base) && f.Downtime != time.Hour {
			t.Errorf("earlier outage truncated to %v, want 1h", f.Downtime)
		}
	}

	// Same-start collision: Lenient skips, Strict errors, Repair merges.
	rep = &validate.Report{}
	out, err = SanitizeFailures(FailuresFile, []Failure{a, sameStart}, nil, nil, validate.DefaultPolicy(), rep)
	if err != nil || len(out) != 1 || rep.Skipped != 1 {
		t.Errorf("lenient same-start: kept %d, err %v, %s", len(out), err, rep.Summary())
	}
	if _, err := SanitizeFailures(FailuresFile, []Failure{a, sameStart}, nil, nil, validate.StrictPolicy(), &validate.Report{}); err == nil {
		t.Error("strict same-start should error")
	}
	rep = &validate.Report{}
	out, err = SanitizeFailures(FailuresFile, []Failure{a, sameStart}, nil, nil, validate.RepairPolicy(), rep)
	if err != nil || len(out) != 1 || rep.Repaired != 1 {
		t.Errorf("repair same-start: kept %d, err %v, %s", len(out), err, rep.Summary())
	}
}

func TestValidateFailuresCSVBudget(t *testing.T) {
	in := cleanFailures + "20,0,garbage,HW,Memory,,,60\n"
	p := validate.DefaultPolicy()
	p.MaxSkipRate = 0.1 // one of four rows skipped = 25% > 10%
	_, rep, err := ValidateFailuresCSV(strings.NewReader(in), nil, p)
	if !errors.Is(err, validate.ErrBudgetExceeded) {
		t.Fatalf("want budget error, got %v (%s)", err, rep.Summary())
	}
}

// TestLoadDirMissingOptionalTables is the graceful-degradation contract:
// a dataset directory holding only the required systems and failures
// tables loads under every mode, with empty auxiliary series and one
// MissingTable diagnostic per absent file.
func TestLoadDirMissingOptionalTables(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(SystemsFile, "id,group,nodes,procs_per_node,period_start,period_end\n"+
		"20,1,4,4,2004-01-01T00:00:00Z,2005-01-01T00:00:00Z\n"+
		"18,1,2,4,2004-01-01T00:00:00Z,2005-01-01T00:00:00Z\n")
	writeFile(FailuresFile, cleanFailures)

	// The plain strict loader must tolerate the missing optional tables.
	ds, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir with missing optional tables: %v", err)
	}
	if len(ds.Failures) != 3 || len(ds.Systems) != 2 {
		t.Fatalf("loaded %d failures, %d systems", len(ds.Failures), len(ds.Systems))
	}
	if len(ds.Jobs) != 0 || len(ds.Temps) != 0 || len(ds.Maintenance) != 0 || len(ds.Neutrons) != 0 {
		t.Error("missing tables should degrade to empty series")
	}

	_, rep, err := LoadDirWith(dir, validate.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range []string{JobsFile, TempsFile, MaintenanceFile, NeutronsFile} {
		if !rep.Has(validate.MissingTable, file, 0) {
			t.Errorf("no MissingTable diagnostic for %s:\n%s", file, rep.Summary())
		}
	}

	// The required tables still gate the load.
	if err := os.Remove(filepath.Join(dir, FailuresFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDirWith(dir, validate.DefaultPolicy()); err == nil {
		t.Error("missing failures table must be an error")
	}
}

func TestSanitizeDataset(t *testing.T) {
	base := mustTime(t, "2004-03-01T08:00:00Z")
	ds := &Dataset{
		Systems: []SystemInfo{{ID: 20, Nodes: 4, Period: Interval{Start: base.Add(-24 * time.Hour), End: base.Add(24 * time.Hour)}}},
		Failures: []Failure{
			{System: 20, Node: 0, Time: base, Category: Hardware, HW: Memory, Downtime: time.Hour},
			{System: 20, Node: 0, Time: base, Category: Hardware, HW: Memory, Downtime: time.Hour}, // duplicate
		},
		Jobs:  []Job{{ID: 1, System: 99}},          // dangling system
		Temps: []TempSample{{System: 20, Node: 9}}, // node out of range
	}
	out, rep, err := SanitizeDataset(ds, validate.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failures) != 1 || len(out.Jobs) != 0 || len(out.Temps) != 0 {
		t.Errorf("sanitized: %d failures, %d jobs, %d temps", len(out.Failures), len(out.Jobs), len(out.Temps))
	}
	if rep.Skipped != 3 {
		t.Errorf("skipped = %d, want 3: %s", rep.Skipped, rep.Summary())
	}
	if len(ds.Failures) != 2 || len(ds.Jobs) != 1 {
		t.Error("input dataset was modified")
	}
}
