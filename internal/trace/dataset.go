package trace

import (
	"fmt"
	"sort"
	"time"

	"github.com/hpcfail/hpcfail/internal/layout"
)

// SystemInfo describes one system covered by a dataset.
type SystemInfo struct {
	// ID is the LANL-style numeric system ID.
	ID int
	// Group is the hardware architecture group.
	Group Group
	// Nodes is the number of nodes in the system.
	Nodes int
	// ProcsPerNode is the processor count of each node.
	ProcsPerNode int
	// Period is the measurement period the logs cover.
	Period Interval
}

// Procs returns the total processor count of the system.
func (s SystemInfo) Procs() int { return s.Nodes * s.ProcsPerNode }

// NodeDays returns the total node-days of observation the system
// contributes: nodes times measurement-period length in days.
func (s SystemInfo) NodeDays() float64 {
	return float64(s.Nodes) * s.Period.Duration().Hours() / 24
}

// Dataset bundles every log type for a collection of systems. Record slices
// are kept sorted by time (per Sort); analyses rely on that order.
type Dataset struct {
	// Systems describes the systems covered, ascending by ID.
	Systems []SystemInfo
	// Failures holds all node-outage records across systems.
	Failures []Failure
	// Jobs holds usage logs (available only for some systems).
	Jobs []Job
	// Temps holds periodic temperature samples (available only for some
	// systems).
	Temps []TempSample
	// Maintenance holds maintenance events.
	Maintenance []MaintenanceEvent
	// Neutrons holds the external neutron-monitor series.
	Neutrons []NeutronSample
	// Layouts maps system ID to machine-room layout, for systems that
	// have layout files.
	Layouts map[int]*layout.Layout
}

// System returns the SystemInfo with the given ID.
func (d *Dataset) System(id int) (SystemInfo, bool) {
	for _, s := range d.Systems {
		if s.ID == id {
			return s, true
		}
	}
	return SystemInfo{}, false
}

// SystemIDs returns the covered system IDs in ascending order.
func (d *Dataset) SystemIDs() []int {
	ids := make([]int, len(d.Systems))
	for i, s := range d.Systems {
		ids[i] = s.ID
	}
	sort.Ints(ids)
	return ids
}

// GroupSystems returns the systems belonging to the given group.
func (d *Dataset) GroupSystems(g Group) []SystemInfo {
	var out []SystemInfo
	for _, s := range d.Systems {
		if s.Group == g {
			out = append(out, s)
		}
	}
	return out
}

// Sort orders every record slice by time (breaking ties by system then
// node), and Systems by ID. Analyses assume this order.
func (d *Dataset) Sort() {
	sort.Slice(d.Systems, func(i, j int) bool { return d.Systems[i].ID < d.Systems[j].ID })
	sort.Slice(d.Failures, func(i, j int) bool {
		a, b := d.Failures[i], d.Failures[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.System != b.System {
			return a.System < b.System
		}
		return a.Node < b.Node
	})
	sort.Slice(d.Jobs, func(i, j int) bool {
		a, b := d.Jobs[i], d.Jobs[j]
		if !a.Submit.Equal(b.Submit) {
			return a.Submit.Before(b.Submit)
		}
		return a.ID < b.ID
	})
	sort.Slice(d.Temps, func(i, j int) bool {
		a, b := d.Temps[i], d.Temps[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.System != b.System {
			return a.System < b.System
		}
		return a.Node < b.Node
	})
	sort.Slice(d.Maintenance, func(i, j int) bool {
		a, b := d.Maintenance[i], d.Maintenance[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.System != b.System {
			return a.System < b.System
		}
		return a.Node < b.Node
	})
	sort.Slice(d.Neutrons, func(i, j int) bool {
		return d.Neutrons[i].Time.Before(d.Neutrons[j].Time)
	})
}

// FilterSystems returns a shallow copy of the dataset restricted to the
// given system IDs. The neutron series, being external, is kept as-is.
func (d *Dataset) FilterSystems(ids ...int) *Dataset {
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := &Dataset{Neutrons: d.Neutrons, Layouts: make(map[int]*layout.Layout)}
	for _, s := range d.Systems {
		if want[s.ID] {
			out.Systems = append(out.Systems, s)
		}
	}
	for _, f := range d.Failures {
		if want[f.System] {
			out.Failures = append(out.Failures, f)
		}
	}
	for _, j := range d.Jobs {
		if want[j.System] {
			out.Jobs = append(out.Jobs, j)
		}
	}
	for _, t := range d.Temps {
		if want[t.System] {
			out.Temps = append(out.Temps, t)
		}
	}
	for _, m := range d.Maintenance {
		if want[m.System] {
			out.Maintenance = append(out.Maintenance, m)
		}
	}
	for id, l := range d.Layouts {
		if want[id] {
			out.Layouts[id] = l
		}
	}
	return out
}

// FilterGroup returns the dataset restricted to the systems of one group.
func (d *Dataset) FilterGroup(g Group) *Dataset {
	var ids []int
	for _, s := range d.Systems {
		if s.Group == g {
			ids = append(ids, s.ID)
		}
	}
	return d.FilterSystems(ids...)
}

// SystemFailures returns the failures of one system, preserving order.
func (d *Dataset) SystemFailures(id int) []Failure {
	var out []Failure
	for _, f := range d.Failures {
		if f.System == id {
			out = append(out, f)
		}
	}
	return out
}

// SystemJobs returns the jobs of one system, preserving order.
func (d *Dataset) SystemJobs(id int) []Job {
	var out []Job
	for _, j := range d.Jobs {
		if j.System == id {
			out = append(out, j)
		}
	}
	return out
}

// Validate checks dataset invariants: every record references a known
// system and an in-range node, record times fall within (a grace margin of)
// the system's measurement period, and category subtypes are consistent.
// It returns the first violation found, or nil.
func (d *Dataset) Validate() error {
	systems := make(map[int]SystemInfo, len(d.Systems))
	for _, s := range d.Systems {
		if s.Nodes <= 0 {
			return fmt.Errorf("system %d: non-positive node count %d", s.ID, s.Nodes)
		}
		if s.Group != Group1 && s.Group != Group2 {
			return fmt.Errorf("system %d: unknown group %d", s.ID, int(s.Group))
		}
		if !s.Period.End.After(s.Period.Start) {
			return fmt.Errorf("system %d: empty measurement period", s.ID)
		}
		if _, dup := systems[s.ID]; dup {
			return fmt.Errorf("duplicate system ID %d", s.ID)
		}
		systems[s.ID] = s
	}
	const grace = 0 * time.Hour
	checkRef := func(kind string, system, node int, t time.Time) error {
		s, ok := systems[system]
		if !ok {
			return fmt.Errorf("%s record references unknown system %d", kind, system)
		}
		if node < 0 || node >= s.Nodes {
			return fmt.Errorf("%s record: node %d out of range [0,%d) for system %d", kind, node, s.Nodes, system)
		}
		if t.Add(grace).Before(s.Period.Start) || t.After(s.Period.End.Add(grace)) {
			return fmt.Errorf("%s record at %s outside system %d period [%s,%s]",
				kind, t.Format(time.RFC3339), system,
				s.Period.Start.Format(time.RFC3339), s.Period.End.Format(time.RFC3339))
		}
		return nil
	}
	for i, f := range d.Failures {
		if err := checkRef("failure", f.System, f.Node, f.Time); err != nil {
			return fmt.Errorf("failures[%d]: %w", i, err)
		}
		if f.Category < Environment || f.Category > Undetermined {
			return fmt.Errorf("failures[%d]: invalid category %d", i, int(f.Category))
		}
		if f.HW != HWUnknown && f.Category != Hardware {
			return fmt.Errorf("failures[%d]: hardware component %s on %s failure", i, f.HW, f.Category)
		}
		if f.SW != SWUnknown && f.Category != Software {
			return fmt.Errorf("failures[%d]: software class %s on %s failure", i, f.SW, f.Category)
		}
		if f.Env != EnvUnknown && f.Category != Environment {
			return fmt.Errorf("failures[%d]: environment class %s on %s failure", i, f.Env, f.Category)
		}
		if f.Downtime < 0 {
			return fmt.Errorf("failures[%d]: negative downtime", i)
		}
	}
	for i, j := range d.Jobs {
		if _, ok := systems[j.System]; !ok {
			return fmt.Errorf("jobs[%d]: unknown system %d", i, j.System)
		}
		if j.Dispatch.Before(j.Submit) {
			return fmt.Errorf("jobs[%d]: dispatch before submit", i)
		}
		if j.End.Before(j.Dispatch) {
			return fmt.Errorf("jobs[%d]: end before dispatch", i)
		}
		if j.Procs <= 0 {
			return fmt.Errorf("jobs[%d]: non-positive proc count %d", i, j.Procs)
		}
		s := systems[j.System]
		for _, n := range j.Nodes {
			if n < 0 || n >= s.Nodes {
				return fmt.Errorf("jobs[%d]: node %d out of range for system %d", i, n, j.System)
			}
		}
	}
	for i, t := range d.Temps {
		if err := checkRef("temperature", t.System, t.Node, t.Time); err != nil {
			return fmt.Errorf("temps[%d]: %w", i, err)
		}
	}
	for i, m := range d.Maintenance {
		if err := checkRef("maintenance", m.System, m.Node, m.Time); err != nil {
			return fmt.Errorf("maintenance[%d]: %w", i, err)
		}
	}
	for i := 1; i < len(d.Neutrons); i++ {
		if d.Neutrons[i].Time.Before(d.Neutrons[i-1].Time) {
			return fmt.Errorf("neutrons[%d]: out of order", i)
		}
	}
	return nil
}
