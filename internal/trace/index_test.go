package trace

import (
	"testing"
	"time"
)

func indexedFailures() []Failure {
	return []Failure{
		{System: 1, Node: 0, Time: ts(0), Category: Hardware, HW: Memory},
		{System: 1, Node: 0, Time: ts(10), Category: Software, SW: DST},
		{System: 1, Node: 1, Time: ts(5), Category: Network},
		{System: 1, Node: 2, Time: ts(20), Category: Hardware, HW: CPU},
		{System: 2, Node: 0, Time: ts(7), Category: Environment, Env: UPS},
	}
}

func sortedIndex() *Index {
	ds := &Dataset{Failures: indexedFailures()}
	ds.Sort()
	return NewIndex(ds.Failures)
}

func TestIndexCounts(t *testing.T) {
	ix := sortedIndex()
	if ix.Len() != 5 {
		t.Fatalf("len = %d", ix.Len())
	}
	if ix.NodeCount(1, 0) != 2 || ix.NodeCount(1, 1) != 1 || ix.NodeCount(9, 9) != 0 {
		t.Error("node counts wrong")
	}
	fs := ix.NodeFailures(1, 0)
	if len(fs) != 2 || !fs[0].Time.Before(fs[1].Time) {
		t.Error("node failures should be time ordered")
	}
	sys := ix.SystemFailures(1)
	if len(sys) != 4 {
		t.Errorf("system failures = %d", len(sys))
	}
}

func TestIndexWindows(t *testing.T) {
	ix := sortedIndex()
	// Window [ts(0), ts(6)) contains node0@0 and node1@5.
	iv := Interval{Start: ts(0), End: ts(6)}
	if !ix.NodeAny(1, 0, iv, nil) {
		t.Error("node 0 has a failure in window")
	}
	if !ix.NodeAny(1, 1, iv, nil) {
		t.Error("node 1 has a failure in window")
	}
	if ix.NodeAny(1, 2, iv, nil) {
		t.Error("node 2 has no failure in window")
	}
	// Right-open: ts(5) excluded when End = ts(5).
	if ix.NodeAny(1, 1, Interval{Start: ts(0), End: ts(5)}, nil) {
		t.Error("window end must be exclusive")
	}
	// Predicate filter.
	if ix.NodeAny(1, 0, iv, CategoryPred(Software)) {
		t.Error("node 0's window failure is HW, not SW")
	}
	if n := ix.NodeCountIn(1, 0, Interval{Start: ts(0), End: ts(24)}, nil); n != 2 {
		t.Errorf("NodeCountIn = %d", n)
	}
	if n := ix.NodeCountIn(1, 0, Interval{Start: ts(0), End: ts(24)}, HWPred(Memory)); n != 1 {
		t.Errorf("NodeCountIn memory = %d", n)
	}
}

func TestIndexSystemQueries(t *testing.T) {
	ix := sortedIndex()
	iv := Interval{Start: ts(0), End: ts(24)}
	if !ix.SystemAnyExcluding(1, 0, iv, nil) {
		t.Error("system 1 has failures on other nodes")
	}
	// Excluding every failing node leaves nothing in a narrow window.
	if ix.SystemAnyExcluding(1, 1, Interval{Start: ts(4), End: ts(6)}, nil) {
		t.Error("only node 1 fails in that window")
	}
	if n := ix.SystemCountIn(1, -1, iv, nil); n != 4 {
		t.Errorf("SystemCountIn = %d", n)
	}
	if n := ix.SystemCountIn(1, 0, iv, nil); n != 2 {
		t.Errorf("SystemCountIn excluding node 0 = %d", n)
	}
	if !ix.NodesAny(1, []int{1, 2}, iv, CategoryPred(Network)) {
		t.Error("NodesAny should find node 1's network failure")
	}
	if ix.NodesAny(1, []int{2}, iv, CategoryPred(Network)) {
		t.Error("node 2 has no network failure")
	}
}

func TestPredHelpers(t *testing.T) {
	f := Failure{Category: Hardware, HW: Fan}
	if !HWPred(Fan).Match(f) || HWPred(CPU).Match(f) {
		t.Error("HWPred wrong")
	}
	if !CategoryPred(Hardware).Match(f) || CategoryPred(Software).Match(f) {
		t.Error("CategoryPred wrong")
	}
	sw := Failure{Category: Software, SW: PFS}
	if !SWPred(PFS).Match(sw) || SWPred(DST).Match(sw) {
		t.Error("SWPred wrong")
	}
	env := Failure{Category: Environment, Env: Chillers}
	if !EnvPred(Chillers).Match(env) || EnvPred(UPS).Match(env) {
		t.Error("EnvPred wrong")
	}
	var nilPred Pred
	if !nilPred.Match(f) {
		t.Error("nil predicate must match everything")
	}
}

func jobFixture() []Job {
	return []Job{
		{System: 8, ID: 1, User: 1, Submit: ts(0), Dispatch: ts(1), End: ts(5), Procs: 4, Nodes: []int{0, 1}},
		{System: 8, ID: 2, User: 2, Submit: ts(2), Dispatch: ts(3), End: ts(7), Procs: 4, Nodes: []int{1}},
		{System: 8, ID: 3, User: 1, Submit: ts(8), Dispatch: ts(10), End: ts(20), Procs: 4, Nodes: []int{2}},
	}
}

func TestJobIndexCountsAndJobs(t *testing.T) {
	jx := NewJobIndex(jobFixture())
	if jx.NodeJobCount(8, 1) != 2 || jx.NodeJobCount(8, 0) != 1 || jx.NodeJobCount(8, 5) != 0 {
		t.Error("job counts wrong")
	}
	jobs := jx.NodeJobs(8, 1)
	if len(jobs) != 2 || !jobs[0].Dispatch.Before(jobs[1].Dispatch) {
		t.Error("node jobs should be dispatch ordered")
	}
}

func TestJobIndexBusyTimeMergesOverlaps(t *testing.T) {
	jx := NewJobIndex(jobFixture())
	period := Interval{Start: ts(0), End: ts(10)}
	// Node 1: job1 [1,5) and job2 [3,7) merge into [1,7) = 6h.
	if busy := jx.NodeBusyTime(8, 1, period); busy != 6*time.Hour {
		t.Errorf("busy = %v, want 6h", busy)
	}
	if u := jx.NodeUtilization(8, 1, period); u != 0.6 {
		t.Errorf("utilization = %g, want 0.6", u)
	}
	// Clipping to the period.
	short := Interval{Start: ts(0), End: ts(4)}
	if busy := jx.NodeBusyTime(8, 1, short); busy != 3*time.Hour {
		t.Errorf("clipped busy = %v, want 3h", busy)
	}
	// Idle node.
	if u := jx.NodeUtilization(8, 7, period); u != 0 {
		t.Errorf("idle utilization = %g", u)
	}
	// Degenerate period.
	if u := jx.NodeUtilization(8, 1, Interval{Start: ts(5), End: ts(5)}); u != 0 {
		t.Error("zero-length period utilization should be 0")
	}
}

func TestJobIndexBusyAt(t *testing.T) {
	jx := NewJobIndex(jobFixture())
	if !jx.BusyAt(8, 0, ts(2)) {
		t.Error("node 0 busy at ts(2)")
	}
	if jx.BusyAt(8, 0, ts(6)) {
		t.Error("node 0 idle at ts(6)")
	}
	// Dispatch boundary inclusive, end exclusive.
	if !jx.BusyAt(8, 2, ts(10)) {
		t.Error("dispatch instant should count as busy")
	}
	if jx.BusyAt(8, 2, ts(20)) {
		t.Error("end instant should not count as busy")
	}
}
