package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/layout"
)

func ts(h int) time.Time {
	return time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func sampleFailures() []Failure {
	return []Failure{
		{System: 18, Node: 0, Time: ts(1), Category: Hardware, HW: Memory, Downtime: 2 * time.Hour},
		{System: 18, Node: 5, Time: ts(2), Category: Environment, Env: PowerOutage, Downtime: 30 * time.Minute},
		{System: 2, Node: 1, Time: ts(3), Category: Software, SW: DST},
		{System: 2, Node: 2, Time: ts(4), Category: Network},
		{System: 2, Node: 3, Time: ts(5), Category: Undetermined, Downtime: time.Second},
	}
}

func TestFailureCSVRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleFailures()
	if err := WriteFailures(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFailures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestFailureCSVErrors(t *testing.T) {
	bad := "system,node,time,category,hw,sw,env,downtime_s\nX,0,2001-03-01T00:00:00Z,HW,,,,0\n"
	if _, err := ReadFailures(strings.NewReader(bad)); err == nil {
		t.Error("bad system field should fail")
	}
	badCat := "system,node,time,category,hw,sw,env,downtime_s\n1,0,2001-03-01T00:00:00Z,NOPE,,,,0\n"
	if _, err := ReadFailures(strings.NewReader(badCat)); err == nil {
		t.Error("bad category should fail")
	}
	badTime := "system,node,time,category,hw,sw,env,downtime_s\n1,0,yesterday,HW,,,,0\n"
	if _, err := ReadFailures(strings.NewReader(badTime)); err == nil {
		t.Error("bad time should fail")
	}
	short := "system,node\n"
	if _, err := ReadFailures(strings.NewReader(short)); err == nil {
		t.Error("wrong column count should fail")
	}
}

func TestJobCSVRoundtrip(t *testing.T) {
	in := []Job{
		{System: 8, ID: 1, User: 42, Submit: ts(0), Dispatch: ts(1), End: ts(9), Procs: 16, Nodes: []int{3, 4, 5, 6}},
		{System: 8, ID: 2, User: 7, Submit: ts(2), Dispatch: ts(2), End: ts(3), Procs: 4, Nodes: []int{0}, FailedByNode: true},
		{System: 20, ID: 3, User: 1, Submit: ts(4), Dispatch: ts(5), End: ts(6), Procs: 4, Nodes: nil},
	}
	var buf bytes.Buffer
	if err := WriteJobs(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestTempsCSVRoundtrip(t *testing.T) {
	in := []TempSample{
		{System: 20, Node: 0, Time: ts(0), Celsius: 27.5},
		{System: 20, Node: 1, Time: ts(1), Celsius: 41.23},
	}
	var buf bytes.Buffer
	if err := WriteTemps(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTemps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", in, out)
	}
}

func TestMaintenanceCSVRoundtrip(t *testing.T) {
	in := []MaintenanceEvent{
		{System: 18, Node: 4, Time: ts(2), Scheduled: false, HardwareRelated: true},
		{System: 18, Node: 9, Time: ts(3), Scheduled: true, HardwareRelated: false},
	}
	var buf bytes.Buffer
	if err := WriteMaintenance(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMaintenance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", in, out)
	}
}

func TestNeutronCSVRoundtrip(t *testing.T) {
	in := []NeutronSample{
		{Time: ts(0), CountsPerMinute: 4000.25},
		{Time: ts(6), CountsPerMinute: 3805},
	}
	var buf bytes.Buffer
	if err := WriteNeutrons(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNeutrons(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", in, out)
	}
}

func TestSystemsCSVRoundtrip(t *testing.T) {
	in := []SystemInfo{
		{ID: 18, Group: Group1, Nodes: 1024, ProcsPerNode: 4, Period: Interval{Start: ts(0), End: ts(1000)}},
		{ID: 2, Group: Group2, Nodes: 44, ProcsPerNode: 128, Period: Interval{Start: ts(0), End: ts(2000)}},
	}
	var buf bytes.Buffer
	if err := WriteSystems(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSystems(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", in, out)
	}
}

func TestLayoutCSVRoundtrip(t *testing.T) {
	in := layout.Regular(18, 23, 4)
	var buf bytes.Buffer
	if err := WriteLayout(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLayout(&buf, 18)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("layout length %d vs %d", out.Len(), in.Len())
	}
	for _, n := range in.Nodes() {
		pi, _ := in.Place(n)
		po, ok := out.Place(n)
		if !ok || pi != po {
			t.Errorf("node %d place %+v vs %+v", n, pi, po)
		}
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	ds := &Dataset{
		Systems: []SystemInfo{
			{ID: 18, Group: Group1, Nodes: 16, ProcsPerNode: 4, Period: Interval{Start: ts(0), End: ts(24 * 100)}},
		},
		Failures: []Failure{
			{System: 18, Node: 1, Time: ts(5), Category: Hardware, HW: CPU, Downtime: time.Hour},
			{System: 18, Node: 2, Time: ts(2), Category: Software, SW: OS},
		},
		Jobs: []Job{
			{System: 18, ID: 1, User: 3, Submit: ts(0), Dispatch: ts(1), End: ts(4), Procs: 4, Nodes: []int{1}},
		},
		Temps: []TempSample{
			{System: 18, Node: 0, Time: ts(1), Celsius: 30},
		},
		Maintenance: []MaintenanceEvent{
			{System: 18, Node: 1, Time: ts(9), HardwareRelated: true},
		},
		Neutrons: []NeutronSample{
			{Time: ts(0), CountsPerMinute: 4000},
		},
		Layouts: map[int]*layout.Layout{18: layout.Regular(18, 16, 2)},
	}
	ds.Sort()
	if err := SaveDir(dir, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Systems) != 1 || len(got.Failures) != 2 || len(got.Jobs) != 1 ||
		len(got.Temps) != 1 || len(got.Maintenance) != 1 || len(got.Neutrons) != 1 {
		t.Fatalf("loaded dataset shape wrong: %+v", got)
	}
	// LoadDir sorts: the earlier failure (node 2 at ts(2)) comes first.
	if got.Failures[0].Node != 2 {
		t.Error("loaded failures not sorted by time")
	}
	if got.Layouts[18] == nil || got.Layouts[18].Len() != 16 {
		t.Error("layout not loaded")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing directory should fail")
	}
}

func TestLayoutFileName(t *testing.T) {
	if LayoutFile(20) != "layout_20.csv" {
		t.Errorf("LayoutFile = %q", LayoutFile(20))
	}
}
