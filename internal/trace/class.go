package trace

// Class identifies one class-partition of a failure log: the whole log
// (ClassAny), one root-cause category, or one (category, subtype) leaf.
// Every failure belongs to ClassAny, to its category's class, and — when
// its category carries a subtype — to exactly one leaf class. Indexes that
// keep one time-sorted posting list per class (see internal/analysis's
// DatasetIndex) can therefore answer any predicate built from the standard
// constructors by binary search over a single list instead of a scan.
type Class uint8

const (
	// ClassAny is the partition holding every failure.
	ClassAny Class = 0

	// Categories occupy 1..6, mirroring the Category values, so
	// CategoryClass is the identity on valid categories.
	classCatBase Class = 1

	// Leaf partitions: one per (category, subtype) pair, including the
	// "subtype unknown" leaves (e.g. Hardware with HWUnknown).
	classHWBase  Class = 7  // 7..16: Hardware by HWComponent
	classSWBase  Class = 17 // 17..23: Software by SWClass
	classEnvBase Class = 24 // 24..29: Environment by EnvClass

	// NumClasses bounds the dense class space; ClassOpaque sits outside it.
	NumClasses = 30

	// ClassOpaque marks predicates that carry an arbitrary filter function
	// (or out-of-range taxonomy values) and therefore route to no
	// partition; indexes fall back to a filtered walk of the ClassAny
	// timeline.
	ClassOpaque Class = 0xFF
)

// CategoryClass returns the partition of one root-cause category, or
// ClassOpaque for out-of-range values.
func CategoryClass(c Category) Class {
	if c < Environment || c > Undetermined {
		return ClassOpaque
	}
	return classCatBase + Class(c-Environment)
}

// HWClass returns the leaf partition of one hardware component, or
// ClassOpaque for out-of-range values.
func HWClass(h HWComponent) Class {
	if h < HWUnknown || h > OtherHW {
		return ClassOpaque
	}
	return classHWBase + Class(h-HWUnknown)
}

// SWClassOf returns the leaf partition of one software class, or
// ClassOpaque for out-of-range values.
func SWClassOf(s SWClass) Class {
	if s < SWUnknown || s > OtherSW {
		return ClassOpaque
	}
	return classSWBase + Class(s-SWUnknown)
}

// EnvClassOf returns the leaf partition of one environment subtype, or
// ClassOpaque for out-of-range values.
func EnvClassOf(e EnvClass) Class {
	if e < EnvUnknown || e > OtherEnv {
		return ClassOpaque
	}
	return classEnvBase + Class(e-EnvUnknown)
}

// ClassesOf appends the classes f belongs to onto dst and returns it:
// always ClassAny, the category class when the category is valid, and the
// (category, subtype) leaf when the category carries an in-range subtype.
func ClassesOf(f Failure, dst []Class) []Class {
	dst = append(dst, ClassAny)
	cat := CategoryClass(f.Category)
	if cat == ClassOpaque {
		return dst
	}
	dst = append(dst, cat)
	switch f.Category {
	case Hardware:
		if leaf := HWClass(f.HW); leaf != ClassOpaque {
			dst = append(dst, leaf)
		}
	case Software:
		if leaf := SWClassOf(f.SW); leaf != ClassOpaque {
			dst = append(dst, leaf)
		}
	case Environment:
		if leaf := EnvClassOf(f.Env); leaf != ClassOpaque {
			dst = append(dst, leaf)
		}
	}
	return dst
}

// predKind discriminates the ClassPred variants.
type predKind uint8

const (
	predAny predKind = iota
	predCategory
	predHW
	predSW
	predEnv
	predFunc
)

// ClassPred is the concrete predicate behind Pred: an event-class selector
// (category, optionally refined to one subtype) that class-partitioned
// indexes answer from a posting list, or an arbitrary filter function
// (PredOf) that they fall back to evaluating per event. Build values with
// CategoryPred, HWPred, SWPred, EnvPred or PredOf; the zero value matches
// every failure, like a nil Pred.
type ClassPred struct {
	kind  predKind
	class Class
	cat   Category
	hw    HWComponent
	sw    SWClass
	env   EnvClass
	fn    func(Failure) bool
}

// Pred is a failure predicate. A nil Pred matches every failure.
type Pred = *ClassPred

// Match reports whether f satisfies p, treating nil as match-all.
func (p *ClassPred) Match(f Failure) bool {
	if p == nil {
		return true
	}
	switch p.kind {
	case predCategory:
		return f.Category == p.cat
	case predHW:
		return f.Category == Hardware && f.HW == p.hw
	case predSW:
		return f.Category == Software && f.SW == p.sw
	case predEnv:
		return f.Category == Environment && f.Env == p.env
	case predFunc:
		return p.fn(f)
	default:
		return true
	}
}

// Class returns the partition that answers the predicate exactly, or
// ClassOpaque when no single partition does (PredOf predicates and
// out-of-range taxonomy values); callers holding ClassOpaque must filter
// with Match.
func (p *ClassPred) Class() Class {
	if p == nil {
		return ClassAny
	}
	return p.class
}

// CategoryPred matches failures of one high-level category.
func CategoryPred(c Category) Pred {
	return &ClassPred{kind: predCategory, class: CategoryClass(c), cat: c}
}

// HWPred matches hardware failures of one component.
func HWPred(h HWComponent) Pred {
	return &ClassPred{kind: predHW, class: HWClass(h), hw: h}
}

// SWPred matches software failures of one class.
func SWPred(s SWClass) Pred {
	return &ClassPred{kind: predSW, class: SWClassOf(s), sw: s}
}

// EnvPred matches environment failures of one subtype.
func EnvPred(e EnvClass) Pred {
	return &ClassPred{kind: predEnv, class: EnvClassOf(e), env: e}
}

// PredOf wraps an arbitrary filter function as a Pred. Such predicates are
// opaque to class-partitioned indexes: queries still run, but evaluate fn
// against every event inside the query window instead of binary-searching a
// partition. A nil fn yields a nil (match-all) Pred.
func PredOf(fn func(Failure) bool) Pred {
	if fn == nil {
		return nil
	}
	return &ClassPred{kind: predFunc, class: ClassOpaque, fn: fn}
}
