package trace

import (
	"strings"
	"testing"
	"time"
)

func validDataset() *Dataset {
	ds := &Dataset{
		Systems: []SystemInfo{
			{ID: 1, Group: Group1, Nodes: 8, ProcsPerNode: 4, Period: Interval{Start: ts(0), End: ts(24 * 30)}},
			{ID: 2, Group: Group2, Nodes: 4, ProcsPerNode: 128, Period: Interval{Start: ts(0), End: ts(24 * 60)}},
		},
		Failures: []Failure{
			{System: 1, Node: 3, Time: ts(10), Category: Hardware, HW: CPU},
			{System: 2, Node: 1, Time: ts(4), Category: Software, SW: OS},
			{System: 1, Node: 0, Time: ts(4), Category: Network},
		},
		Jobs: []Job{
			{System: 1, ID: 9, User: 1, Submit: ts(1), Dispatch: ts(2), End: ts(8), Procs: 4, Nodes: []int{3}},
		},
		Temps: []TempSample{
			{System: 1, Node: 2, Time: ts(6), Celsius: 30},
		},
		Maintenance: []MaintenanceEvent{
			{System: 2, Node: 0, Time: ts(12)},
		},
		Neutrons: []NeutronSample{
			{Time: ts(0), CountsPerMinute: 4000},
			{Time: ts(6), CountsPerMinute: 3990},
		},
	}
	ds.Sort()
	return ds
}

func TestDatasetSortOrders(t *testing.T) {
	ds := validDataset()
	for i := 1; i < len(ds.Failures); i++ {
		if ds.Failures[i].Time.Before(ds.Failures[i-1].Time) {
			t.Fatal("failures not sorted")
		}
	}
	// Tie at ts(4) broken by system.
	if ds.Failures[0].System != 1 || ds.Failures[1].System != 2 {
		t.Error("tie-break by system failed")
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := validDataset()
	if s, ok := ds.System(2); !ok || s.Group != Group2 {
		t.Error("System lookup failed")
	}
	if _, ok := ds.System(99); ok {
		t.Error("unknown system should not be found")
	}
	ids := ds.SystemIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("ids = %v", ids)
	}
	if got := len(ds.GroupSystems(Group1)); got != 1 {
		t.Errorf("group-1 systems = %d", got)
	}
	if got := len(ds.SystemFailures(1)); got != 2 {
		t.Errorf("system 1 failures = %d", got)
	}
	if got := len(ds.SystemJobs(1)); got != 1 {
		t.Errorf("system 1 jobs = %d", got)
	}
}

func TestFilterSystems(t *testing.T) {
	ds := validDataset()
	sub := ds.FilterSystems(1)
	if len(sub.Systems) != 1 || len(sub.Failures) != 2 || len(sub.Jobs) != 1 || len(sub.Maintenance) != 0 {
		t.Errorf("filtered shape wrong: %d systems %d failures %d jobs %d maint",
			len(sub.Systems), len(sub.Failures), len(sub.Jobs), len(sub.Maintenance))
	}
	// Neutron series is external and kept.
	if len(sub.Neutrons) != 2 {
		t.Error("neutrons should be preserved")
	}
	g2 := ds.FilterGroup(Group2)
	if len(g2.Systems) != 1 || g2.Systems[0].ID != 2 {
		t.Error("FilterGroup wrong")
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	if err := validDataset().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dataset)
		substr string
	}{
		{"unknown system", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 99, Node: 0, Time: ts(1), Category: Hardware})
		}, "unknown system"},
		{"node out of range", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 64, Time: ts(1), Category: Hardware})
		}, "out of range"},
		{"time outside period", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 0, Time: ts(24 * 4000), Category: Hardware})
		}, "outside system"},
		{"invalid category", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 0, Time: ts(1), Category: Category(17)})
		}, "invalid category"},
		{"hw subtype on sw failure", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 0, Time: ts(1), Category: Software, HW: CPU})
		}, "hardware component"},
		{"env subtype on hw failure", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 0, Time: ts(1), Category: Hardware, Env: UPS})
		}, "environment class"},
		{"negative downtime", func(d *Dataset) {
			d.Failures = append(d.Failures, Failure{System: 1, Node: 0, Time: ts(1), Category: Hardware, Downtime: -time.Hour})
		}, "negative downtime"},
		{"dispatch before submit", func(d *Dataset) {
			d.Jobs = append(d.Jobs, Job{System: 1, Submit: ts(5), Dispatch: ts(4), End: ts(6), Procs: 1})
		}, "dispatch before submit"},
		{"end before dispatch", func(d *Dataset) {
			d.Jobs = append(d.Jobs, Job{System: 1, Submit: ts(3), Dispatch: ts(4), End: ts(3), Procs: 1})
		}, "end before dispatch"},
		{"zero procs", func(d *Dataset) {
			d.Jobs = append(d.Jobs, Job{System: 1, Submit: ts(3), Dispatch: ts(4), End: ts(6)})
		}, "proc count"},
		{"job node range", func(d *Dataset) {
			d.Jobs = append(d.Jobs, Job{System: 1, Submit: ts(3), Dispatch: ts(4), End: ts(6), Procs: 4, Nodes: []int{88}})
		}, "out of range"},
		{"duplicate system", func(d *Dataset) {
			d.Systems = append(d.Systems, d.Systems[0])
		}, "duplicate system"},
		{"neutrons out of order", func(d *Dataset) {
			d.Neutrons = append(d.Neutrons, NeutronSample{Time: ts(-100)})
		}, "out of order"},
		{"bad group", func(d *Dataset) {
			d.Systems[0].Group = Group(7)
		}, "unknown group"},
		{"empty period", func(d *Dataset) {
			d.Systems[0].Period.End = d.Systems[0].Period.Start
		}, "empty measurement period"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ds := validDataset()
			c.mutate(ds)
			err := ds.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.substr) {
				t.Errorf("error %q does not mention %q", err, c.substr)
			}
		})
	}
}
