package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// randomFailure draws a structurally valid failure record.
func randomFailure(rng *rand.Rand, systems, nodes int) Failure {
	f := Failure{
		System:   1 + rng.Intn(systems),
		Node:     rng.Intn(nodes),
		Time:     ts(rng.Intn(10000)).Add(time.Duration(rng.Intn(3600)) * time.Second),
		Category: Categories[rng.Intn(len(Categories))],
		Downtime: time.Duration(rng.Intn(100000)) * time.Second,
	}
	switch f.Category {
	case Hardware:
		f.HW = HWComponents[rng.Intn(len(HWComponents))]
	case Software:
		f.SW = SWClasses[rng.Intn(len(SWClasses))]
	case Environment:
		f.Env = EnvClasses[rng.Intn(len(EnvClasses))]
	}
	return f
}

// TestFailureCSVRoundtripProperty checks the codec is lossless for
// arbitrary valid failure slices.
func TestFailureCSVRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw % 50)
		in := make([]Failure, n)
		for i := range in {
			in[i] = randomFailure(rng, 5, 64)
		}
		var buf bytes.Buffer
		if err := WriteFailures(&buf, in); err != nil {
			return false
		}
		out, err := ReadFailures(&buf)
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestIndexMatchesNaiveScan cross-checks every Index window query against a
// brute-force scan on random data.
func TestIndexMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(200)
		fs := make([]Failure, n)
		for i := range fs {
			fs[i] = randomFailure(rng, 3, 16)
		}
		ds := &Dataset{Failures: fs}
		ds.Sort()
		ix := NewIndex(ds.Failures)

		iv := Interval{
			Start: ts(rng.Intn(10000)),
			End:   ts(rng.Intn(10000)),
		}
		if iv.End.Before(iv.Start) {
			iv.Start, iv.End = iv.End, iv.Start
		}
		var pred Pred
		if rng.Intn(2) == 0 {
			pred = CategoryPred(Categories[rng.Intn(len(Categories))])
		}
		system := 1 + rng.Intn(3)
		node := rng.Intn(16)

		// Naive references.
		naiveAny, naiveCount := false, 0
		naiveSysAny, naiveSysCount := false, 0
		exclude := rng.Intn(16)
		for _, f := range ds.Failures {
			if !iv.Contains(f.Time) || !pred.Match(f) {
				continue
			}
			if f.System == system && f.Node == node {
				naiveAny = true
				naiveCount++
			}
			if f.System == system && f.Node != exclude {
				naiveSysAny = true
				naiveSysCount++
			}
		}
		if got := ix.NodeAny(system, node, iv, pred); got != naiveAny {
			t.Fatalf("trial %d: NodeAny = %v, naive %v", trial, got, naiveAny)
		}
		if got := ix.NodeCountIn(system, node, iv, pred); got != naiveCount {
			t.Fatalf("trial %d: NodeCountIn = %d, naive %d", trial, got, naiveCount)
		}
		if got := ix.SystemAnyExcluding(system, exclude, iv, pred); got != naiveSysAny {
			t.Fatalf("trial %d: SystemAnyExcluding = %v, naive %v", trial, got, naiveSysAny)
		}
		if got := ix.SystemCountIn(system, exclude, iv, pred); got != naiveSysCount {
			t.Fatalf("trial %d: SystemCountIn = %d, naive %d", trial, got, naiveSysCount)
		}
	}
}

// TestJobIndexUtilizationBounds checks utilization stays in [0,1] for
// arbitrary job sets and that busy time never exceeds the period.
func TestJobIndexUtilizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(60)
		jobs := make([]Job, n)
		for i := range jobs {
			start := ts(rng.Intn(5000))
			jobs[i] = Job{
				System:   1,
				ID:       int64(i),
				User:     rng.Intn(5),
				Submit:   start.Add(-time.Hour),
				Dispatch: start,
				End:      start.Add(time.Duration(rng.Intn(200)) * time.Hour),
				Procs:    4,
				Nodes:    []int{rng.Intn(8)},
			}
		}
		jx := NewJobIndex(jobs)
		period := Interval{Start: ts(0), End: ts(5000)}
		for node := 0; node < 8; node++ {
			u := jx.NodeUtilization(1, node, period)
			if u < 0 || u > 1.0000001 {
				t.Fatalf("trial %d node %d: utilization %g", trial, node, u)
			}
			busy := jx.NodeBusyTime(1, node, period)
			if busy < 0 || busy > period.Duration() {
				t.Fatalf("trial %d node %d: busy %v of %v", trial, node, busy, period.Duration())
			}
		}
	}
}

// TestSortIdempotent checks Sort is stable under repetition.
func TestSortIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	fs := make([]Failure, 100)
	for i := range fs {
		fs[i] = randomFailure(rng, 4, 8)
	}
	ds := &Dataset{Failures: fs}
	ds.Sort()
	once := append([]Failure(nil), ds.Failures...)
	ds.Sort()
	if !reflect.DeepEqual(once, ds.Failures) {
		t.Error("Sort must be idempotent")
	}
}
