// Package trace defines the data model for HPC failure-log analysis: node
// outage records with a LANL-style root-cause taxonomy, job (usage) records,
// temperature samples, unscheduled-maintenance events, and neutron-monitor
// samples, together with codecs and time/node indexes over them.
//
// The schema mirrors the publicly released Los Alamos National Laboratory
// operational data that the DSN'13 study ("Reading between the lines of
// failure logs") is based on: every record carries a system ID, a node ID
// within the system, and a timestamp; failures carry one of six high-level
// root-cause categories plus, where applicable, a more detailed hardware,
// software, or environment subtype.
package trace

import (
	"fmt"
	"time"
)

// Group identifies the hardware architecture group a system belongs to.
// The DSN'13 study splits the ten LANL systems into two groups.
type Group int

const (
	// Group1 systems are built from 4-way SMP nodes (LANL IDs 3, 4, 5, 6,
	// 18, 19, 20): many nodes, few processors per node.
	Group1 Group = iota + 1
	// Group2 systems are built from large NUMA nodes (LANL IDs 2, 16, 23):
	// few nodes, typically 128 processors per node.
	Group2
)

// String returns the conventional name of the group.
func (g Group) String() string {
	switch g {
	case Group1:
		return "group-1"
	case Group2:
		return "group-2"
	default:
		return fmt.Sprintf("group(%d)", int(g))
	}
}

// Category is the high-level root cause of a node outage. The six values
// correspond to the categories used by LANL operations staff.
type Category int

const (
	// Environment covers facility-level problems: power outages, power
	// spikes, UPS failures, chiller failures and similar.
	Environment Category = iota + 1
	// Hardware covers component faults inside a node (CPU, DIMM, node
	// board, power supply, fan, ...).
	Hardware
	// Human covers operator and administrator errors.
	Human
	// Network covers interconnect and NIC problems.
	Network
	// Software covers system-software problems (OS, parallel/cluster file
	// systems, distributed storage, patching, ...).
	Software
	// Undetermined marks outages whose root cause was never established.
	Undetermined
)

// Categories lists all six root-cause categories in canonical order, the
// order used by the paper's figures (ENV, HW, HUMAN, NET, SW, UNDET is the
// bar order of Figure 1; we keep declaration order and expose the figure
// order via FigureOrder).
var Categories = []Category{Environment, Hardware, Human, Network, Software, Undetermined}

// FigureOrder lists the categories in the order the paper's bar charts use.
var FigureOrder = []Category{Environment, Hardware, Human, Network, Undetermined, Software}

// String returns the short label used in the paper's figures.
func (c Category) String() string {
	switch c {
	case Environment:
		return "ENV"
	case Hardware:
		return "HW"
	case Human:
		return "HUMAN"
	case Network:
		return "NET"
	case Software:
		return "SW"
	case Undetermined:
		return "UNDET"
	default:
		return fmt.Sprintf("CAT(%d)", int(c))
	}
}

// ParseCategory converts a label (as produced by Category.String) back to a
// Category. It accepts both the figure labels and full lowercase names.
func ParseCategory(s string) (Category, error) {
	switch s {
	case "ENV", "environment":
		return Environment, nil
	case "HW", "hardware":
		return Hardware, nil
	case "HUMAN", "human":
		return Human, nil
	case "NET", "network":
		return Network, nil
	case "SW", "software":
		return Software, nil
	case "UNDET", "undetermined":
		return Undetermined, nil
	default:
		return 0, fmt.Errorf("unknown failure category %q", s)
	}
}

// HWComponent is the hardware component responsible for a Hardware failure,
// when known. The component set follows the breakdowns in the paper's
// Figures 10 and 13.
type HWComponent int

const (
	// HWUnknown marks hardware failures without component attribution.
	HWUnknown HWComponent = iota
	// CPU failures: processor faults, usually uncorrectable corruption.
	CPU
	// Memory failures: DIMM faults beyond ECC correction.
	Memory
	// NodeBoard failures: motherboard / node-board faults.
	NodeBoard
	// PowerSupply failures: faults of a node's power supply unit.
	PowerSupply
	// Fan failures: node or enclosure fan faults.
	Fan
	// MSCBoard failures: module service controller board faults.
	MSCBoard
	// Midplane failures: chassis midplane faults.
	Midplane
	// NIC failures: network-interface hardware faults attributed to the
	// node's hardware rather than the fabric.
	NIC
	// OtherHW collects the remaining attributed hardware faults.
	OtherHW
)

// HWComponents lists the attributable components in canonical order.
var HWComponents = []HWComponent{CPU, Memory, NodeBoard, PowerSupply, Fan, MSCBoard, Midplane, NIC, OtherHW}

// String returns the component label used in the paper's figures.
func (h HWComponent) String() string {
	switch h {
	case HWUnknown:
		return "HW?"
	case CPU:
		return "CPU"
	case Memory:
		return "Memory"
	case NodeBoard:
		return "NodeBoard"
	case PowerSupply:
		return "PowerSupply"
	case Fan:
		return "Fan"
	case MSCBoard:
		return "MSCBoard"
	case Midplane:
		return "MidPlane"
	case NIC:
		return "NIC"
	case OtherHW:
		return "OtherHW"
	default:
		return fmt.Sprintf("HW(%d)", int(h))
	}
}

// ParseHWComponent converts a label back to an HWComponent.
func ParseHWComponent(s string) (HWComponent, error) {
	switch s {
	case "", "HW?":
		return HWUnknown, nil
	case "CPU":
		return CPU, nil
	case "Memory":
		return Memory, nil
	case "NodeBoard":
		return NodeBoard, nil
	case "PowerSupply":
		return PowerSupply, nil
	case "Fan":
		return Fan, nil
	case "MSCBoard":
		return MSCBoard, nil
	case "MidPlane":
		return Midplane, nil
	case "NIC":
		return NIC, nil
	case "OtherHW":
		return OtherHW, nil
	default:
		return 0, fmt.Errorf("unknown hardware component %q", s)
	}
}

// SWClass is the software subsystem responsible for a Software failure, when
// known. The class set follows the breakdown in the paper's Figure 11.
type SWClass int

const (
	// SWUnknown marks software failures without subsystem attribution.
	SWUnknown SWClass = iota
	// DST: the distributed storage system.
	DST
	// OS: the operating system.
	OS
	// PFS: the parallel file system.
	PFS
	// CFS: the cluster file system.
	CFS
	// PatchInstall: problems caused by patch installation.
	PatchInstall
	// OtherSW collects the remaining attributed software faults.
	OtherSW
)

// SWClasses lists the attributable software classes in canonical order.
var SWClasses = []SWClass{DST, OtherSW, PatchInstall, OS, PFS, CFS}

// String returns the label used in the paper's Figure 11.
func (s SWClass) String() string {
	switch s {
	case SWUnknown:
		return "SW?"
	case DST:
		return "DST"
	case OS:
		return "OS"
	case PFS:
		return "PFS"
	case CFS:
		return "CFS"
	case PatchInstall:
		return "PatchInstl"
	case OtherSW:
		return "OtherSW"
	default:
		return fmt.Sprintf("SW(%d)", int(s))
	}
}

// ParseSWClass converts a label back to an SWClass.
func ParseSWClass(s string) (SWClass, error) {
	switch s {
	case "", "SW?":
		return SWUnknown, nil
	case "DST":
		return DST, nil
	case "OS":
		return OS, nil
	case "PFS":
		return PFS, nil
	case "CFS":
		return CFS, nil
	case "PatchInstl":
		return PatchInstall, nil
	case "OtherSW":
		return OtherSW, nil
	default:
		return 0, fmt.Errorf("unknown software class %q", s)
	}
}

// EnvClass is the facility-level subtype of an Environment failure. The
// class set follows the breakdown in the paper's Figure 9.
type EnvClass int

const (
	// EnvUnknown marks environment failures without subtype attribution.
	EnvUnknown EnvClass = iota
	// PowerOutage: loss of facility power.
	PowerOutage
	// PowerSpike: transient over-voltage events.
	PowerSpike
	// UPS: failures of the uninterruptible power supply.
	UPS
	// Chillers: failures of the machine-room chiller system.
	Chillers
	// OtherEnv collects the remaining environment faults.
	OtherEnv
)

// EnvClasses lists the environment subtypes in canonical order (the order of
// the Figure 9 breakdown).
var EnvClasses = []EnvClass{PowerOutage, PowerSpike, UPS, Chillers, OtherEnv}

// String returns the label used in the paper's Figure 9.
func (e EnvClass) String() string {
	switch e {
	case EnvUnknown:
		return "ENV?"
	case PowerOutage:
		return "PowerOutage"
	case PowerSpike:
		return "PowerSpike"
	case UPS:
		return "UPS"
	case Chillers:
		return "Chillers"
	case OtherEnv:
		return "Environment"
	default:
		return fmt.Sprintf("ENV(%d)", int(e))
	}
}

// ParseEnvClass converts a label back to an EnvClass.
func ParseEnvClass(s string) (EnvClass, error) {
	switch s {
	case "", "ENV?":
		return EnvUnknown, nil
	case "PowerOutage":
		return PowerOutage, nil
	case "PowerSpike":
		return PowerSpike, nil
	case "UPS":
		return UPS, nil
	case "Chillers":
		return Chillers, nil
	case "Environment":
		return OtherEnv, nil
	default:
		return 0, fmt.Errorf("unknown environment class %q", s)
	}
}

// Failure is a single node-outage record.
type Failure struct {
	// System is the LANL-style numeric system ID.
	System int
	// Node is the node ID within the system, starting at 0.
	Node int
	// Time is when the outage began.
	Time time.Time
	// Category is the high-level root cause.
	Category Category
	// HW is the responsible component for Hardware failures; HWUnknown
	// otherwise.
	HW HWComponent
	// SW is the responsible subsystem for Software failures; SWUnknown
	// otherwise.
	SW SWClass
	// Env is the facility subtype for Environment failures; EnvUnknown
	// otherwise.
	Env EnvClass
	// Downtime is how long the node was out, when recorded.
	Downtime time.Duration
}

// SubtypeLabel returns the most specific label available for the failure:
// the hardware component, software class, or environment subtype when the
// category carries one, and the category label otherwise.
func (f Failure) SubtypeLabel() string {
	switch f.Category {
	case Hardware:
		if f.HW != HWUnknown {
			return f.HW.String()
		}
	case Software:
		if f.SW != SWUnknown {
			return f.SW.String()
		}
	case Environment:
		if f.Env != EnvUnknown {
			return f.Env.String()
		}
	}
	return f.Category.String()
}

// Job is a single job record from a system's usage log.
type Job struct {
	// System is the system the job ran on.
	System int
	// ID is the job's unique identifier within the system's log.
	ID int64
	// User identifies the submitting user (anonymized numeric ID).
	User int
	// Submit is when the job entered the queue.
	Submit time.Time
	// Dispatch is when the job was dispatched from the queue to run.
	Dispatch time.Time
	// End is when the job finished.
	End time.Time
	// Procs is the number of processors the job requested.
	Procs int
	// Nodes lists the node IDs the job was assigned to.
	Nodes []int
	// FailedByNode reports whether the job was terminated by a failure of
	// one of its nodes (as opposed to finishing or failing on its own).
	FailedByNode bool
}

// Runtime returns the job's execution time (End minus Dispatch). It returns
// zero for malformed records where End precedes Dispatch.
func (j Job) Runtime() time.Duration {
	if j.End.Before(j.Dispatch) {
		return 0
	}
	return j.End.Sub(j.Dispatch)
}

// ProcDays returns the job's consumption in processor-days, the usage unit
// of the paper's Section VI.
func (j Job) ProcDays() float64 {
	return float64(j.Procs) * j.Runtime().Hours() / 24
}

// TempSample is one periodic motherboard-sensor temperature reading.
type TempSample struct {
	System int
	Node   int
	Time   time.Time
	// Celsius is the ambient temperature reported by the sensor.
	Celsius float64
}

// HighTempThreshold is the severe-temperature warning threshold used by the
// paper's num_hightemp regression variable (Table I): 40 degrees Celsius.
const HighTempThreshold = 40.0

// MaintenanceEvent records a maintenance action on a node.
type MaintenanceEvent struct {
	System int
	Node   int
	Time   time.Time
	// Scheduled distinguishes planned maintenance from unscheduled
	// (reactive) downtime; the paper studies the unscheduled kind.
	Scheduled bool
	// HardwareRelated reports whether the action addressed a hardware
	// problem.
	HardwareRelated bool
}

// NeutronSample is one neutron-monitor reading, following the 1-minute
// resolution counts from the Climax, Colorado station used in Section IX.
type NeutronSample struct {
	Time time.Time
	// CountsPerMinute is the high-energy neutron count rate.
	CountsPerMinute float64
}

// Interval is a right-open time interval [Start, End).
type Interval struct {
	Start time.Time
	End   time.Time
}

// Duration returns End minus Start, or zero for inverted intervals.
func (iv Interval) Duration() time.Duration {
	if iv.End.Before(iv.Start) {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Contains reports whether t falls inside the right-open interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Overlaps reports whether the two right-open intervals share any instant.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start.Before(other.End) && other.Start.Before(iv.End)
}

// Standard analysis windows used throughout the paper.
const (
	// Day is the 24-hour window.
	Day = 24 * time.Hour
	// Week is the 7-day window.
	Week = 7 * Day
	// Month is approximated as 30 days, matching the paper's usage of
	// "month" as a fixed-length window.
	Month = 30 * Day
)

// WindowName returns the paper's name for one of the standard windows, or a
// duration string for any other length.
func WindowName(w time.Duration) string {
	switch w {
	case Day:
		return "day"
	case Week:
		return "week"
	case Month:
		return "month"
	default:
		return w.String()
	}
}
