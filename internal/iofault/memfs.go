package iofault

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation on a MemFS once its mutating-op
// budget (CrashAfter) is exhausted — the in-test stand-in for "the machine
// lost power here". The workload under test cannot make further progress;
// the test then calls Reboot and recovers over what was durable.
var ErrCrashed = errors.New("iofault: simulated crash")

// TearMode selects what Reboot does to the write that was in flight when
// the crash hit. Real disks do not write sectors atomically, so the dirty
// tail of the last-written file may partially reach the platter.
type TearMode int

const (
	// TearNone: the in-flight write vanishes entirely (clean page-cache
	// loss).
	TearNone TearMode = iota
	// TearPartial: roughly half of the in-flight dirty tail of the
	// last-written file reaches the durable image — a torn write.
	TearPartial
	// TearBitFlip: TearPartial plus one flipped bit inside the fragment
	// that made it down — a torn write with in-flight corruption. Only
	// bytes that were never acknowledged durable are touched, so recovery
	// must reject or truncate them, never refuse to start.
	TearBitFlip
)

// MemFS is an in-memory FS that models durability the way a crash sees it:
//
//   - File writes land in a visible image (what reads return) and become
//     durable only when Sync flushes them to the file's durable image.
//   - Directory entry mutations (create, rename, remove) become durable
//     only when SyncDir flushes them — unless EagerDirSync is set, which
//     models a metadata-journaling filesystem that persists entries on its
//     own. Crash-consistency sweeps run both modes.
//   - A failed Sync has fsyncgate semantics: the dirty range is dropped —
//     the durable image gets a zero-filled gap where the data should be,
//     and the range is marked clean, so a later Sync "succeeds" without
//     ever persisting the bytes. Callers that retry instead of failing
//     stop lose acknowledged data, which is exactly what the WAL's poison
//     behaviour exists to prevent.
//   - Every mutating operation counts against an optional budget
//     (CrashAfter); the op that exceeds it, and everything after, returns
//     ErrCrashed. Reboot then discards all non-durable state (optionally
//     tearing the in-flight write) and the filesystem is usable again.
//
// Within one directory, pending entry mutations apply in FIFO order at
// SyncDir — the model cannot reorder a rename after a later remove, which
// is the one hazard WriteSnapshotFile's rename-then-syncdir ordering
// guards against on real disks.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memNode // visible directory entries
	dirs     map[string]bool     // visible directories
	durFiles map[string]*memNode // durable directory entries
	durDirs  map[string]bool
	pending  map[string][]dirOp // per-directory entry mutations awaiting SyncDir
	eager    bool               // entries durable without SyncDir

	ops        int // mutating operations performed
	crashAfter int // budget; 0 = unlimited
	crashed    bool

	syncErr error // one-shot injected fsync failure (fsyncgate)
	tempSeq int
	lastWr  *memNode // node of the most recent write (tear target)
}

// memNode is one file's content. The visible image is data; the durable
// image is dur, which always holds exactly clean bytes: the prefix of the
// file whose durability is settled (flushed — or dropped by a failed
// fsync, in which case dur holds zeros there).
type memNode struct {
	data  []byte
	dur   []byte
	clean int
}

// dirOp is one pending directory-entry mutation.
type dirOp struct {
	name string   // full path
	node *memNode // nil = remove the entry
}

// NewMemFS returns an empty filesystem containing only the root directory.
func NewMemFS() *MemFS {
	return &MemFS{
		files:    map[string]*memNode{},
		dirs:     map[string]bool{"/": true, ".": true},
		durFiles: map[string]*memNode{},
		durDirs:  map[string]bool{"/": true, ".": true},
		pending:  map[string][]dirOp{},
	}
}

// CrashAfter arms the crash budget: the (n+1)th mutating operation from
// now, and every operation after it, fails with ErrCrashed. n <= 0 disarms.
// The op counter restarts from zero.
func (m *MemFS) CrashAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashAfter = n
	m.crashed = false
}

// Ops returns how many mutating operations have been performed since the
// filesystem was created, rebooted, or last armed with CrashAfter — a dry
// run over a workload measures its total op count for sweep enumeration.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the crash budget has been exhausted.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// EagerDirSync toggles whether directory-entry mutations are durable
// immediately (a metadata-journaling filesystem) instead of waiting for
// SyncDir (the strict POSIX model).
func (m *MemFS) EagerDirSync(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.eager = on
}

// FailNextSync arms a one-shot fsync failure with fsyncgate semantics: the
// next File.Sync returns err and the file's dirty range is silently
// dropped from the durable image (zero-filled) while being marked clean —
// so a retried Sync reports success without the data ever persisting.
func (m *MemFS) FailNextSync(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncErr = err
}

// countOp charges one mutating operation against the crash budget. Callers
// hold m.mu.
func (m *MemFS) countOp() error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.crashAfter > 0 && m.ops > m.crashAfter {
		m.crashed = true
		return ErrCrashed
	}
	return nil
}

// Reboot simulates power loss and restart: every visible-but-not-durable
// byte and directory entry is discarded, the crash budget is disarmed, and
// the filesystem becomes usable again over exactly the durable image. The
// tear mode optionally lets part of the in-flight write (the dirty tail of
// the last-written file) survive, torn or bit-flipped.
func (m *MemFS) Reboot(tear TearMode) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// The tear fragment comes from the node that was last written, wherever
	// its durable entry lives (it may be durable under a pre-rename name).
	var tearNode *memNode
	var tearFrag []byte
	if tear != TearNone && m.lastWr != nil {
		if dirty := m.lastWr.data[m.lastWr.clean:]; len(dirty) > 0 {
			frag := append([]byte(nil), dirty[:(len(dirty)+1)/2]...)
			if tear == TearBitFlip {
				frag[len(frag)-1] ^= 0x40
			}
			tearNode, tearFrag = m.lastWr, frag
		}
	}

	files := make(map[string]*memNode, len(m.durFiles))
	for p, n := range m.durFiles {
		img := append([]byte(nil), n.dur...)
		if n == tearNode {
			img = append(img, tearFrag...)
		}
		files[p] = &memNode{data: img, dur: append([]byte(nil), img...), clean: len(img)}
	}
	dirs := make(map[string]bool, len(m.durDirs))
	for d := range m.durDirs {
		dirs[d] = true
	}
	durFiles := make(map[string]*memNode, len(files))
	for p, n := range files {
		durFiles[p] = n
	}
	durDirs := make(map[string]bool, len(dirs))
	for d := range dirs {
		durDirs[d] = true
	}

	m.files, m.dirs = files, dirs
	m.durFiles, m.durDirs = durFiles, durDirs
	m.pending = map[string][]dirOp{}
	m.ops, m.crashAfter, m.crashed = 0, 0, false
	m.syncErr = nil
	m.lastWr = nil
}

// link queues (or, in eager mode, applies) one directory-entry mutation.
// Callers hold m.mu.
func (m *MemFS) link(name string, node *memNode) {
	if m.eager {
		if node == nil {
			delete(m.durFiles, name)
		} else {
			m.durFiles[name] = node
		}
		return
	}
	dir := filepath.Dir(name)
	m.pending[dir] = append(m.pending[dir], dirOp{name: name, node: node})
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return nil, &os.PathError{Op: "open", Path: name, Err: ErrCrashed}
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	node, ok := m.files[name]
	switch {
	case !ok:
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if dir := filepath.Dir(name); !m.dirs[dir] {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if err := m.countOp(); err != nil {
			return nil, &os.PathError{Op: "create", Path: name, Err: err}
		}
		node = &memNode{}
		m.files[name] = node
		m.link(name, node)
	case flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case flag&os.O_TRUNC != 0 && writable:
		if err := m.countOp(); err != nil {
			return nil, &os.PathError{Op: "truncate", Path: name, Err: err}
		}
		node.truncate(0)
	}
	return &memFile{fs: m, node: node, name: name, app: flag&os.O_APPEND != 0, writable: writable}, nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if m.crashed {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: ErrCrashed}
	}
	if !m.dirs[dir] {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: os.ErrNotExist}
	}
	if err := m.countOp(); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	base := pattern
	m.tempSeq++
	if strings.Contains(pattern, "*") {
		base = strings.Replace(pattern, "*", fmt.Sprintf("%06d", m.tempSeq), 1)
	} else {
		base = pattern + fmt.Sprintf("%06d", m.tempSeq)
	}
	name := filepath.Join(dir, base)
	if _, exists := m.files[name]; exists {
		return nil, &os.PathError{Op: "createtemp", Path: name, Err: os.ErrExist}
	}
	node := &memNode{}
	m.files[name] = node
	m.link(name, node)
	return &memFile{fs: m, node: node, name: name, writable: true}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if m.crashed {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrCrashed}
	}
	node, ok := m.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	if err := m.countOp(); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	delete(m.files, oldpath)
	m.files[newpath] = node
	m.link(oldpath, nil)
	m.link(newpath, node)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return &os.PathError{Op: "remove", Path: name, Err: ErrCrashed}
	}
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	if err := m.countOp(); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	delete(m.files, name)
	m.link(name, nil)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return &os.PathError{Op: "truncate", Path: name, Err: ErrCrashed}
	}
	node, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if err := m.countOp(); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	node.truncate(size)
	return nil
}

func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	if m.crashed {
		return &os.PathError{Op: "mkdir", Path: path, Err: ErrCrashed}
	}
	if m.dirs[path] {
		return nil
	}
	// Directory creation is modeled as immediately durable: losing an empty
	// directory across a crash is benign for every caller here (they
	// MkdirAll on open), and it keeps the crash-point space focused on the
	// mutations that can lose data.
	if err := m.countOp(); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	for p := path; ; p = filepath.Dir(p) {
		if m.dirs[p] {
			break
		}
		m.dirs[p] = true
		m.durDirs[p] = true
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: ErrCrashed}
	}
	if !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	var ents []os.DirEntry
	for p, n := range m.files {
		if filepath.Dir(p) == name {
			ents = append(ents, memDirEntry{name: filepath.Base(p), size: int64(len(n.data))})
		}
	}
	for d := range m.dirs {
		if d != name && filepath.Dir(d) == name {
			ents = append(ents, memDirEntry{name: filepath.Base(d), dir: true})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name() < ents[j].Name() })
	return ents, nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return nil, &os.PathError{Op: "stat", Path: name, Err: ErrCrashed}
	}
	if n, ok := m.files[name]; ok {
		return memFileInfo{name: filepath.Base(name), size: int64(len(n.data))}, nil
	}
	if m.dirs[name] {
		return memFileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.crashed {
		return nil, &os.PathError{Op: "read", Path: name, Err: ErrCrashed}
	}
	n, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), n.data...), nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if m.crashed {
		return &os.PathError{Op: "syncdir", Path: dir, Err: ErrCrashed}
	}
	if !m.dirs[dir] {
		return &os.PathError{Op: "syncdir", Path: dir, Err: os.ErrNotExist}
	}
	if err := m.countOp(); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	for _, op := range m.pending[dir] {
		if op.node == nil {
			delete(m.durFiles, op.name)
		} else {
			m.durFiles[op.name] = op.node
		}
	}
	delete(m.pending, dir)
	return nil
}

// truncate resizes a node's visible image; shrinking below the settled
// prefix also shrinks the durable image (freed blocks are gone at once —
// the optimistic model; no caller here relies on truncate surviving).
func (n *memNode) truncate(size int64) {
	s := int(size)
	switch {
	case s < len(n.data):
		n.data = n.data[:s]
		if n.clean > s {
			n.clean = s
			n.dur = n.dur[:s]
		}
	case s > len(n.data):
		n.data = append(n.data, make([]byte, s-len(n.data))...)
	}
}

// memFile is an open handle on a MemFS node.
type memFile struct {
	fs       *MemFS
	node     *memNode
	name     string
	off      int64
	app      bool
	writable bool
	closed   bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.fs.crashed {
		return 0, &os.PathError{Op: "read", Path: f.name, Err: ErrCrashed}
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrPermission}
	}
	if err := f.fs.countOp(); err != nil {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: err}
	}
	if f.app {
		f.off = int64(len(f.node.data))
	}
	if gap := f.off - int64(len(f.node.data)); gap > 0 {
		f.node.data = append(f.node.data, make([]byte, gap)...)
	}
	n := copy(f.node.data[f.off:], p)
	f.node.data = append(f.node.data, p[n:]...)
	f.off += int64(len(p))
	f.fs.lastWr = f.node
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.node.data)) + offset
	default:
		return 0, fmt.Errorf("iofault: bad whence %d", whence)
	}
	if f.off < 0 {
		return 0, fmt.Errorf("iofault: negative seek offset")
	}
	return f.off, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.countOp(); err != nil {
		return &os.PathError{Op: "sync", Path: f.name, Err: err}
	}
	dirty := len(f.node.data) - f.node.clean
	if err := f.fs.syncErr; err != nil {
		// fsyncgate: the failed fsync drops the dirty range. The durable
		// image gets zeros where the data should be, and the range is
		// marked clean — a retried Sync will report success without the
		// bytes ever reaching stable storage.
		f.fs.syncErr = nil
		if dirty > 0 {
			f.node.dur = append(f.node.dur, make([]byte, dirty)...)
			f.node.clean = len(f.node.data)
		}
		return &os.PathError{Op: "sync", Path: f.name, Err: err}
	}
	if dirty > 0 {
		f.node.dur = append(f.node.dur, f.node.data[f.node.clean:]...)
		f.node.clean = len(f.node.data)
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if !f.writable {
		return &os.PathError{Op: "truncate", Path: f.name, Err: os.ErrPermission}
	}
	if err := f.fs.countOp(); err != nil {
		return &os.PathError{Op: "truncate", Path: f.name, Err: err}
	}
	f.node.truncate(size)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

func (f *memFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.crashed {
		return nil, &os.PathError{Op: "stat", Path: f.name, Err: ErrCrashed}
	}
	return memFileInfo{name: filepath.Base(f.name), size: int64(len(f.node.data))}, nil
}

// memFileInfo / memDirEntry satisfy os.FileInfo / os.DirEntry for MemFS.
type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() iofs.FileMode {
	if i.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }

type memDirEntry struct {
	name string
	size int64
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() iofs.FileMode {
	if e.dir {
		return iofs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (iofs.FileInfo, error) {
	return memFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}
