package iofault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeFile creates name on fsys with the given content, unsynced.
func writeFile(t *testing.T, fsys FS, name string, data []byte) File {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return f
}

func TestMemFSDurabilityNeedsSync(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}

	// Synced file + synced dir entry: survives.
	f := writeFile(t, m, "/d/synced", []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}

	// Written but never synced: content gone after reboot (entry durable —
	// SyncDir above flushed the creation, the later write is not).
	g := writeFile(t, m, "/d/dirty", []byte("doomed"))
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte(" more")); err != nil {
		t.Fatal(err)
	}

	// Created but entry never synced: file gone entirely.
	writeFile(t, m, "/d/orphan", []byte("gone")).Sync()

	m.Reboot(TearNone)

	if data, err := m.ReadFile("/d/synced"); err != nil || string(data) != "hello" {
		t.Fatalf("synced file: %q, %v", data, err)
	}
	if data, err := m.ReadFile("/d/dirty"); err != nil || len(data) != 0 {
		t.Fatalf("dirty file should be durable-but-empty: %q, %v", data, err)
	}
	if _, err := m.ReadFile("/d/orphan"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan should not survive: %v", err)
	}
}

func TestMemFSEagerDirSync(t *testing.T) {
	m := NewMemFS()
	m.EagerDirSync(true)
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeFile(t, m, "/d/a", []byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Reboot(TearNone)
	if data, err := m.ReadFile("/d/a"); err != nil || string(data) != "x" {
		t.Fatalf("eager entry should survive without SyncDir: %q, %v", data, err)
	}
}

func TestMemFSRenamePendingUntilSyncDir(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeFile(t, m, "/d/tmp", []byte("v2"))
	f.Sync()
	f.Close()
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("/d/tmp", "/d/final"); err != nil {
		t.Fatal(err)
	}
	// Visible immediately...
	if _, err := m.ReadFile("/d/final"); err != nil {
		t.Fatalf("rename not visible: %v", err)
	}
	// ...but without SyncDir the crash rolls it back.
	m.Reboot(TearNone)
	if _, err := m.ReadFile("/d/final"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced rename should not survive: %v", err)
	}
	if data, err := m.ReadFile("/d/tmp"); err != nil || string(data) != "v2" {
		t.Fatalf("old name should survive: %q, %v", data, err)
	}
}

func TestMemFSFsyncgate(t *testing.T) {
	m := NewMemFS()
	m.EagerDirSync(true)
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := writeFile(t, m, "/d/log", []byte("acked"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-dropped")); err != nil {
		t.Fatal(err)
	}
	m.FailNextSync(&os.PathError{Op: "sync", Path: "/d/log", Err: syscall.EIO})
	if err := f.Sync(); err == nil {
		t.Fatal("armed sync should fail")
	}
	// The retried fsync lies: it reports success...
	if err := f.Sync(); err != nil {
		t.Fatalf("retried sync should report success: %v", err)
	}
	m.Reboot(TearNone)
	// ...but the dropped range never reached stable storage.
	data, err := m.ReadFile("/d/log")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("acked"), make([]byte, len("-dropped"))...)
	if !bytes.Equal(data, want) {
		t.Fatalf("durable image = %q, want acked prefix + zero gap %q", data, want)
	}
}

func TestMemFSCrashAfter(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	// Dry run: create+write+sync+syncdir.
	run := func(fs *MemFS) error {
		f, err := fs.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("x")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		f.Close()
		return fs.SyncDir("/d")
	}
	m.CrashAfter(0)
	if err := run(m); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	total := m.Ops()
	if total < 4 {
		t.Fatalf("expected >=4 ops, got %d", total)
	}
	for n := 1; n < total; n++ {
		m2 := NewMemFS()
		if err := m2.MkdirAll("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		m2.CrashAfter(n)
		err := run(m2)
		if err == nil {
			t.Fatalf("crashAfter(%d): schedule of %d ops should have crashed mid-way", n, total)
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAfter(%d): got %v, want ErrCrashed", n, err)
		}
		if !m2.Crashed() {
			t.Fatalf("crashAfter(%d): Crashed() false after ErrCrashed", n)
		}
		// Everything keeps failing until reboot.
		if _, err := m2.ReadFile("/d/f"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAfter(%d): reads should fail post-crash: %v", n, err)
		}
		m2.Reboot(TearNone)
		if m2.Crashed() {
			t.Fatal("reboot should clear the crashed state")
		}
	}
}

func TestMemFSTearModes(t *testing.T) {
	build := func(tear TearMode) []byte {
		m := NewMemFS()
		m.EagerDirSync(true)
		m.MkdirAll("/d", 0o755)
		f := writeFile(t, m, "/d/f", []byte("durable!"))
		f.Sync()
		f.Write([]byte("inflight")) // dirty tail at "crash"
		m.Reboot(tear)
		data, err := m.ReadFile("/d/f")
		if err != nil {
			t.Fatalf("tear %d: %v", tear, err)
		}
		return data
	}
	none := build(TearNone)
	if string(none) != "durable!" {
		t.Fatalf("TearNone: %q", none)
	}
	partial := build(TearPartial)
	if string(partial) != "durable!infl" {
		t.Fatalf("TearPartial: %q, want durable prefix + half the dirty tail", partial)
	}
	flipped := build(TearBitFlip)
	if len(flipped) != len(partial) || bytes.Equal(flipped, partial) {
		t.Fatalf("TearBitFlip: %q should differ from %q by one bit", flipped, partial)
	}
}

func TestInjectDiskFullStickyAndClearFile(t *testing.T) {
	dir := t.TempDir()
	clear := filepath.Join(dir, "space-freed")
	in := NewInject(Disk, InjectSpec{MaxWriteBytes: 10, ClearFile: clear})

	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	_, err = f.Write([]byte("overflow"))
	if !IsDiskFull(err) {
		t.Fatalf("over budget: got %v, want ENOSPC", err)
	}
	if !in.DiskFull() {
		t.Fatal("disk-full should be sticky")
	}
	if _, err := f.Write([]byte("x")); !IsDiskFull(err) {
		t.Fatalf("sticky: got %v", err)
	}
	if _, err := in.CreateTemp(dir, "t-*"); !IsDiskFull(err) {
		t.Fatalf("createtemp while full: got %v", err)
	}
	// Freeing space (creating the clear file on the base FS) recovers.
	if err := os.WriteFile(clear, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("again")); err != nil {
		t.Fatalf("after clear: %v", err)
	}
	f.Close()
}

func TestInjectOneShotFaults(t *testing.T) {
	dir := t.TempDir()
	in := NewInject(Disk, InjectSpec{})
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in.FailNextWrite(&os.PathError{Op: "write", Path: "f", Err: syscall.EIO})
	if _, err := f.Write([]byte("abc")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("armed write: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("one-shot should clear: %v", err)
	}
	in.ShortNextWrite(2)
	n, err := f.Write([]byte("wxyz"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	in.FailNextSync(syscall.EIO)
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("armed sync: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after one-shot: %v", err)
	}
	f.Close()
	// Only the acknowledged bytes are on disk: 3 + 2 = 5.
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(data) != "abcwx" {
		t.Fatalf("on-disk = %q, %v", data, err)
	}
}

func TestMemFSSeekAndReadDir(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f := writeFile(t, m, "/d/b", []byte("0123456789"))
	f.Close()
	writeFile(t, m, "/d/a", nil).Close()

	r, err := Open(m, "/d/b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(r, buf); err != nil || string(buf) != "456" {
		t.Fatalf("seek+read: %q, %v", buf, err)
	}
	r.Close()

	ents, err := m.ReadDir("/d")
	if err != nil || len(ents) != 2 || ents[0].Name() != "a" || ents[1].Name() != "b" {
		t.Fatalf("readdir: %v, %v", ents, err)
	}
	if _, err := m.OpenFile("/d/a", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); !errors.Is(err, os.ErrExist) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
}
