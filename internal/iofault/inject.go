package iofault

import (
	"io"
	"os"
	"sync"
	"syscall"
)

// InjectSpec configures an Inject wrapper at construction.
type InjectSpec struct {
	// MaxWriteBytes is a cumulative write budget across every file: once a
	// write would push the total past it, the filesystem turns sticky
	// disk-full — that write and everything after fail with ENOSPC, and
	// file creation fails too. 0 means unlimited. This is how a subprocess
	// under test runs out of disk at a deterministic point mid-ingest.
	MaxWriteBytes int64
	// ClearFile, when non-empty, names a path whose existence (checked on
	// the base FS at the next failing operation) clears the disk-full
	// condition and resets the write budget — the test's stand-in for "an
	// operator freed space".
	ClearFile string
}

// Inject wraps any FS with deterministic fault injection: sticky ENOSPC
// (armed directly or via a cumulative write budget), one-shot write errors,
// one-shot short writes, and one-shot fsync failures. Faults trigger on the
// operation that would consume them — no randomness, no timing. Safe for
// concurrent use.
type Inject struct {
	base FS
	spec InjectSpec

	mu        sync.Mutex
	written   int64
	full      bool
	nextWrite error
	shortNext int
	nextSync  error
}

// NewInject wraps base with the given fault spec.
func NewInject(base FS, spec InjectSpec) *Inject {
	return &Inject{base: Or(base), spec: spec}
}

// SetDiskFull arms or clears the sticky disk-full condition directly.
// Clearing also resets the cumulative write budget.
func (in *Inject) SetDiskFull(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.full = on
	if !on {
		in.written = 0
	}
}

// DiskFull reports whether the disk-full condition is currently armed.
func (in *Inject) DiskFull() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.full
}

// FailNextWrite arms a one-shot error for the next file write.
func (in *Inject) FailNextWrite(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nextWrite = err
}

// ShortNextWrite arms a one-shot short write: the next write persists only
// the first n bytes and returns an io.ErrShortWrite-wrapping error.
func (in *Inject) ShortNextWrite(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shortNext = n
}

// FailNextSync arms a one-shot error for the next file fsync. Over a MemFS
// base, arm the MemFS's own FailNextSync instead to get fsyncgate dirty-
// data-drop semantics; this wrapper only reports the failure.
func (in *Inject) FailNextSync(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nextSync = err
}

// enospc builds the disk-full error every rejected operation returns.
func enospc(op, path string) error {
	return &os.PathError{Op: op, Path: path, Err: syscall.ENOSPC}
}

// checkFull refreshes and reports the disk-full state. Callers hold in.mu;
// the clear-file probe releases it around the base Stat.
func (in *Inject) checkFull() bool {
	if !in.full || in.spec.ClearFile == "" {
		return in.full
	}
	clear := in.spec.ClearFile
	in.mu.Unlock()
	_, err := in.base.Stat(clear)
	in.mu.Lock()
	if err == nil {
		in.full = false
		in.written = 0
	}
	return in.full
}

// chargeWrite applies write-path faults for an n-byte write. It returns
// (bytes to actually write, error to report). Callers hold in.mu.
func (in *Inject) chargeWrite(name string, n int) (int, error) {
	if in.checkFull() {
		return 0, enospc("write", name)
	}
	if err := in.nextWrite; err != nil {
		in.nextWrite = nil
		return 0, err
	}
	if s := in.shortNext; s > 0 && s < n {
		in.shortNext = 0
		in.written += int64(s)
		return s, &os.PathError{Op: "write", Path: name, Err: io.ErrShortWrite}
	}
	if in.spec.MaxWriteBytes > 0 && in.written+int64(n) > in.spec.MaxWriteBytes {
		in.full = true
		return 0, enospc("write", name)
	}
	in.written += int64(n)
	return n, nil
}

func (in *Inject) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		in.mu.Lock()
		full := in.checkFull()
		in.mu.Unlock()
		if full {
			if _, err := in.base.Stat(name); err != nil {
				return nil, enospc("create", name)
			}
			// The file exists, so no allocation is needed to open it.
		}
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Inject) CreateTemp(dir, pattern string) (File, error) {
	in.mu.Lock()
	full := in.checkFull()
	in.mu.Unlock()
	if full {
		return nil, enospc("createtemp", dir)
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Inject) Rename(oldpath, newpath string) error { return in.base.Rename(oldpath, newpath) }

func (in *Inject) Remove(name string) error { return in.base.Remove(name) }

func (in *Inject) Truncate(name string, size int64) error { return in.base.Truncate(name, size) }

func (in *Inject) MkdirAll(path string, perm os.FileMode) error {
	return in.base.MkdirAll(path, perm)
}

func (in *Inject) ReadDir(name string) ([]os.DirEntry, error) { return in.base.ReadDir(name) }

func (in *Inject) Stat(name string) (os.FileInfo, error) { return in.base.Stat(name) }

func (in *Inject) ReadFile(name string) ([]byte, error) { return in.base.ReadFile(name) }

func (in *Inject) SyncDir(dir string) error { return in.base.SyncDir(dir) }

// injFile wraps a base file handle with the injector's write/sync faults.
type injFile struct {
	in *Inject
	f  File
}

func (f *injFile) Name() string               { return f.f.Name() }
func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
func (f *injFile) Truncate(size int64) error  { return f.f.Truncate(size) }
func (f *injFile) Close() error               { return f.f.Close() }
func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *injFile) Write(p []byte) (int, error) {
	f.in.mu.Lock()
	allow, ierr := f.in.chargeWrite(f.f.Name(), len(p))
	f.in.mu.Unlock()
	if ierr != nil && allow == 0 {
		return 0, ierr
	}
	n, werr := f.f.Write(p[:allow])
	if werr != nil {
		return n, werr
	}
	return n, ierr
}

func (f *injFile) Sync() error {
	f.in.mu.Lock()
	err := f.in.nextSync
	f.in.nextSync = nil
	f.in.mu.Unlock()
	if err != nil {
		return err
	}
	return f.f.Sync()
}
