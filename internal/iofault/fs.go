// Package iofault is the storage-fault seam for the durability layer: a
// minimal filesystem abstraction (FS / File) that the WAL, the snapshot
// writer and the journal do all their I/O through, plus fault-injecting
// implementations — a deterministic error injector (Inject) for EIO,
// ENOSPC, short writes and failed fsyncs over any backing FS, and an
// in-memory filesystem (MemFS) that models what actually survives a crash
// (nothing is durable until fsync; directory entries are not durable until
// the directory is fsynced; a failed fsync silently drops the dirty range —
// fsyncgate) and can halt after the Nth mutating operation so a test can
// enumerate every crash point of an I/O schedule.
//
// The production path pays one interface indirection per call and nothing
// else: Disk forwards straight to the os package.
package iofault

import (
	"errors"
	"io"
	"os"
	"syscall"
)

// File is the handle surface the durability layer needs: sequential and
// positioned reads, appends, fsync, and truncation for torn-tail repair and
// append rollback.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the path the file was opened or created as.
	Name() string
	// Stat returns file metadata (the WAL uses only Size).
	Stat() (os.FileInfo, error)
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Truncate changes the file's size (shrinking discards the tail).
	Truncate(size int64) error
}

// FS is the filesystem surface the durability layer needs. Every
// implementation must preserve os package error semantics: a missing file
// is os.ErrNotExist, an O_EXCL collision is os.ErrExist, and a full disk is
// an error wrapping syscall.ENOSPC.
type FS interface {
	// OpenFile opens name with os.OpenFile flag semantics (the subset used
	// here: O_RDONLY, O_WRONLY, O_APPEND, O_CREATE, O_EXCL, O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a uniquely-named file in dir from pattern, as
	// os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat returns metadata for the named file or directory.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so entry creations, renames and removals
	// inside it are durable, not just file contents.
	SyncDir(dir string) error
}

// Disk is the real filesystem: every call forwards to the os package.
var Disk FS = osFS{}

// Or returns fsys, or Disk when fsys is nil — the "nil means real disk"
// convention every Options struct in the durability layer uses.
func Or(fsys FS) FS {
	if fsys == nil {
		return Disk
	}
	return fsys
}

// Open opens name read-only on fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// IsDiskFull reports whether err is a disk-full condition (wraps
// syscall.ENOSPC anywhere in its chain). The serving layer uses it to pick
// sticky read-only degradation over a plain server fault.
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// osFS is the passthrough implementation backing Disk.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
