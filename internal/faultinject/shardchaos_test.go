package faultinject

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeFabric records kill/stall calls for assertions.
type fakeFabric struct {
	mu     sync.Mutex
	n      int
	kills  []int
	stalls []int
}

func (f *fakeFabric) ShardCount() int { return f.n }

func (f *fakeFabric) KillShard(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kills = append(f.kills, i)
	return nil
}

func (f *fakeFabric) StallShard(i int, _ time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stalls = append(f.stalls, i)
	return nil
}

func TestShardChaosKillOnce(t *testing.T) {
	fab := &fakeFabric{n: 4}
	var slept []time.Duration
	c := NewShardChaos(ShardChaosSpec{
		Seed:      1,
		KillShard: 2,
		KillAfter: 50 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
	})
	c.Run(context.Background(), fab)
	if len(fab.kills) != 1 || fab.kills[0] != 2 {
		t.Fatalf("kills = %v, want [2]", fab.kills)
	}
	if got := c.Stats().Kills; got != 1 {
		t.Fatalf("Stats().Kills = %d, want 1", got)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept = %v, want [50ms]", slept)
	}
}

func TestShardChaosStallsDeterministic(t *testing.T) {
	run := func() ([]int, uint64) {
		fab := &fakeFabric{n: 3}
		ctx, cancel := context.WithCancel(context.Background())
		ticks := 0
		c := NewShardChaos(ShardChaosSpec{
			Seed:      42,
			KillShard: -1,
			StallProb: 0.5,
			MaxStall:  time.Second,
			Sleep: func(time.Duration) {
				ticks++
				if ticks > 200 {
					cancel()
				}
			},
		})
		c.Run(ctx, fab)
		return fab.stalls, c.Stats().Stalls
	}
	a, an := run()
	b, bn := run()
	if an == 0 {
		t.Fatal("expected some stalls with prob 0.5 over 200 ticks")
	}
	if an != bn || len(a) != len(b) {
		t.Fatalf("runs differ in count: %d vs %d", an, bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stall %d differs: shard %d vs %d", i, a[i], b[i])
		}
	}
	for _, i := range a {
		if i < 0 || i >= 3 {
			t.Fatalf("stalled shard %d out of range", i)
		}
	}
}

func TestShardChaosNoKillWhenDisabled(t *testing.T) {
	fab := &fakeFabric{n: 2}
	c := NewShardChaos(ShardChaosSpec{Seed: 7, KillShard: -1})
	c.Run(context.Background(), fab)
	if len(fab.kills) != 0 || len(fab.stalls) != 0 {
		t.Fatalf("expected no faults, got kills=%v stalls=%v", fab.kills, fab.stalls)
	}
}

func TestShardChaosOutOfRangeKillIgnored(t *testing.T) {
	fab := &fakeFabric{n: 2}
	c := NewShardChaos(ShardChaosSpec{Seed: 7, KillShard: 9})
	c.Run(context.Background(), fab)
	if len(fab.kills) != 0 {
		t.Fatalf("expected out-of-range kill to be skipped, got %v", fab.kills)
	}
}
