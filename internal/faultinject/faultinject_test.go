package faultinject_test

import (
	"bytes"
	"testing"

	"github.com/hpcfail/hpcfail/internal/experiments"
	"github.com/hpcfail/hpcfail/internal/faultinject"
	"github.com/hpcfail/hpcfail/internal/simulate"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
)

func smallDataset(t *testing.T) *trace.Dataset {
	t.Helper()
	ds, err := simulate.Generate(simulate.Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRoundTripPerClass is the fault-injection round-trip property: for
// every fault class, importing the corrupted dataset in Lenient mode never
// panics, returns a non-nil dataset, and the validation report attributes
// each injected fault to the expected class at the injected line.
func TestRoundTripPerClass(t *testing.T) {
	ds := smallDataset(t)
	for _, class := range faultinject.Classes {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			dir := t.TempDir()
			injected, err := faultinject.CorruptDataset(dir, ds, faultinject.Spec{
				Seed: 100 + int64(class), Rate: 0.3, Classes: []faultinject.Class{class},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(injected) == 0 {
				t.Fatal("corruptor injected nothing")
			}
			got, rep, err := trace.LoadDirWith(dir, validate.DefaultPolicy())
			if err != nil {
				t.Fatalf("lenient load: %v", err)
			}
			if got == nil {
				t.Fatal("lenient load returned nil dataset")
			}
			want := class.Expected()
			for _, inj := range injected {
				if !rep.Has(want, trace.FailuresFile, inj.Line) {
					t.Errorf("injection %s at line %d: no %s diagnostic at that line", inj.Class, inj.Line, want)
				}
			}
		})
	}
}

// TestRepairCorpusRunsSuite corrupts a dataset with duplicates and
// overlapping outages, repairs it on load, and runs the full experiment
// suite over the result.
func TestRepairCorpusRunsSuite(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	injected, err := faultinject.CorruptDataset(dir, ds, faultinject.Spec{
		Seed: 11, Rate: 0.4,
		Classes: []faultinject.Class{faultinject.DuplicateRow, faultinject.OverlappingOutage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(injected) == 0 {
		t.Fatal("corruptor injected nothing")
	}
	repaired, rep, err := trace.LoadDirWith(dir, validate.RepairPolicy())
	if err != nil {
		t.Fatalf("repair load: %v", err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("repair load repaired nothing: %s", rep.Summary())
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired dataset fails invariants: %v", err)
	}
	for _, res := range experiments.NewSuite(repaired).RunAll() {
		if res.Err != nil {
			t.Errorf("experiment %s failed on repaired dataset: %v", res.ID, res.Err)
		}
	}
}

// TestLenientFullMixNeverAborts corrupts with the full fault mix and checks
// the lenient load survives with a usable dataset and a budget-relevant
// report.
func TestLenientFullMixNeverAborts(t *testing.T) {
	ds := smallDataset(t)
	dir := t.TempDir()
	if _, err := faultinject.CorruptDataset(dir, ds, faultinject.Spec{Seed: 3, Rate: 0.5}); err != nil {
		t.Fatal(err)
	}
	got, rep, err := trace.LoadDirWith(dir, validate.DefaultPolicy())
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if got == nil || len(got.Failures) == 0 {
		t.Fatal("lenient load lost every record")
	}
	if rep.Skipped == 0 {
		t.Error("a 50% fault mix should skip at least one record")
	}
	if rep.SkipRate() <= 0 || rep.SkipRate() >= 1 {
		t.Errorf("skip rate %v out of (0,1)", rep.SkipRate())
	}
	if err := (validate.Policy{MaxSkipRate: 0.01}).CheckBudget(rep); err == nil {
		t.Error("tight budget should reject this skip rate")
	}
}

// TestDeterminism: identical specs produce identical corpora.
func TestDeterminism(t *testing.T) {
	fs := smallDataset(t).Failures[:200]
	a, injA, err := faultinject.CorruptFailures(fs, faultinject.Spec{Seed: 42, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, injB, err := faultinject.CorruptFailures(fs, faultinject.Spec{Seed: 42, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different bytes")
	}
	if len(injA) != len(injB) {
		t.Fatalf("same seed produced %d vs %d injections", len(injA), len(injB))
	}
	c, _, err := faultinject.CorruptFailures(fs, faultinject.Spec{Seed: 43, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical bytes")
	}
}

func TestSeedCorpus(t *testing.T) {
	corpus := faultinject.SeedCorpus(1)
	if len(corpus) != len(faultinject.Classes)+1 {
		t.Fatalf("corpus has %d entries, want %d", len(corpus), len(faultinject.Classes)+1)
	}
	for i, blob := range corpus {
		fs, _, rep, err := trace.DecodeFailuresCSV(bytes.NewReader(blob), validate.DefaultPolicy())
		if err != nil {
			t.Fatalf("corpus[%d]: lenient decode errored: %v", i, err)
		}
		if i == 0 && (len(fs) == 0 || len(rep.Diagnostics) != 0) {
			t.Errorf("clean corpus entry: %d failures, %d diagnostics", len(fs), len(rep.Diagnostics))
		}
	}
}
