package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func chaosBackend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

// TestChaosDeterministic pins the reproducibility contract: the same seed
// over the same request sequence injects exactly the same faults.
func TestChaosDeterministic(t *testing.T) {
	run := func() ChaosStats {
		c := NewChaos(ChaosSpec{
			Seed:        42,
			LatencyProb: 0.3,
			MaxLatency:  time.Millisecond,
			ErrorProb:   0.3,
			AbortProb:   0.2,
			Sleep:       func(time.Duration) {},
		})
		ts := httptest.NewServer(c.Middleware(chaosBackend()))
		defer ts.Close()
		for i := 0; i < 200; i++ {
			resp, err := http.Get(ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	// Aborted GETs are transparently retried by net/http on a fresh
	// connection, so the server sees at least the 200 client calls.
	if a.Requests < 200 {
		t.Errorf("requests = %d, want >= 200", a.Requests)
	}
	if a.Delays == 0 || a.Errors == 0 || a.Aborts == 0 {
		t.Errorf("some fault class never fired: %+v", a)
	}
}

// TestChaosAbortsCloseConnection asserts aborts surface as client-side
// network errors, not HTTP responses.
func TestChaosAbortsCloseConnection(t *testing.T) {
	c := NewChaos(ChaosSpec{Seed: 1, AbortProb: 1})
	ts := httptest.NewServer(c.Middleware(chaosBackend()))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("aborted request got response %d, want network error", resp.StatusCode)
	}
}

func TestChaosInjectedErrors(t *testing.T) {
	c := NewChaos(ChaosSpec{Seed: 1, ErrorProb: 1})
	ts := httptest.NewServer(c.Middleware(chaosBackend()))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("injected error = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected error missing Retry-After")
	}
}

// TestChaosZeroSpecIsTransparent: an all-zero spec must pass every request
// through untouched.
func TestChaosZeroSpecIsTransparent(t *testing.T) {
	c := NewChaos(ChaosSpec{Seed: 7})
	ts := httptest.NewServer(c.Middleware(chaosBackend()))
	defer ts.Close()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err != nil {
				t.Errorf("transparent chaos failed request: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Delays+st.Errors+st.Aborts != 0 {
		t.Errorf("zero spec injected faults: %+v", st)
	}
}

func TestByteCorruptors(t *testing.T) {
	data := []byte("hello, wal segment")
	if got := TearTail(data, 5); !bytes.Equal(got, data[:len(data)-5]) {
		t.Errorf("TearTail = %q", got)
	}
	if got := TearTail(data, 1000); len(got) != 0 {
		t.Errorf("over-long tear = %q", got)
	}
	flipped := FlipBit(data, 3, 2)
	if bytes.Equal(flipped, data) {
		t.Error("FlipBit changed nothing")
	}
	if !bytes.Equal(FlipBit(flipped, 3, 2), data) {
		t.Error("FlipBit not an involution")
	}
	if got := AppendGarbage(data, 7, 1); len(got) != len(data)+7 || !bytes.Equal(got[:len(data)], data) {
		t.Errorf("AppendGarbage = %q", got)
	}
	if !bytes.Equal(AppendGarbage(data, 7, 1), AppendGarbage(data, 7, 1)) {
		t.Error("AppendGarbage not deterministic per seed")
	}
	// None of the corruptors may mutate their input.
	if string(data) != "hello, wal segment" {
		t.Error("corruptor mutated its input")
	}
}
