// Package faultinject is a deterministic, seedable corruptor for failure
// datasets: it takes clean records, serializes them into the canonical CSV,
// and injects a configurable mix of the faults real operator-entered logs
// exhibit — truncated and extra fields, garbled and out-of-range timestamps,
// negative and absurd downtimes, duplicated rows, overlapping outages on one
// node, references to systems and nodes that do not exist, swapped columns,
// mixed timestamp layouts, and BOM/control-byte junk.
//
// Every injection is recorded as ground truth (which fault, which output
// line), so the validation/repair engine's claims are testable end to end:
// corrupt a dataset, re-ingest it, and assert that the report attributes
// each injected fault to the expected class at the expected line.
package faultinject

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// TruncatedField drops trailing fields from a row.
	TruncatedField Class = iota + 1
	// ExtraField appends a surplus field to a row.
	ExtraField
	// GarbledTimestamp replaces the timestamp with unparseable text.
	GarbledTimestamp
	// OutOfRangeTimestamp moves the timestamp outside the plausible epoch.
	OutOfRangeTimestamp
	// NegativeDowntime makes the downtime negative.
	NegativeDowntime
	// AbsurdDowntime makes the downtime implausibly long.
	AbsurdDowntime
	// DuplicateRow repeats a row verbatim.
	DuplicateRow
	// OverlappingOutage inserts a second outage of the same node starting
	// at the same instant.
	OverlappingOutage
	// UnknownSystem points the row at a system absent from the catalog.
	UnknownSystem
	// UnknownNode points the row at a node ID outside any system's range.
	UnknownNode
	// SwappedColumns swaps the timestamp and category cells.
	SwappedColumns
	// MixedTimeLayout rewrites the timestamp in a non-canonical layout.
	MixedTimeLayout
	// EncodingJunk prepends a BOM and a control byte to the row.
	EncodingJunk
)

// Classes lists every injectable fault class.
var Classes = []Class{
	TruncatedField, ExtraField, GarbledTimestamp, OutOfRangeTimestamp,
	NegativeDowntime, AbsurdDowntime, DuplicateRow, OverlappingOutage,
	UnknownSystem, UnknownNode, SwappedColumns, MixedTimeLayout, EncodingJunk,
}

// String names the fault class.
func (c Class) String() string {
	switch c {
	case TruncatedField:
		return "truncated-field"
	case ExtraField:
		return "extra-field"
	case GarbledTimestamp:
		return "garbled-timestamp"
	case OutOfRangeTimestamp:
		return "out-of-range-timestamp"
	case NegativeDowntime:
		return "negative-downtime"
	case AbsurdDowntime:
		return "absurd-downtime"
	case DuplicateRow:
		return "duplicate-row"
	case OverlappingOutage:
		return "overlapping-outage"
	case UnknownSystem:
		return "unknown-system"
	case UnknownNode:
		return "unknown-node"
	case SwappedColumns:
		return "swapped-columns"
	case MixedTimeLayout:
		return "mixed-time-layout"
	case EncodingJunk:
		return "encoding-junk"
	default:
		return fmt.Sprintf("fault(%d)", int(c))
	}
}

// Expected returns the validate.Class a conforming validation engine
// attributes this fault to. SwappedColumns surfaces as a bad timestamp
// because the timestamp cell is the first one the parser rejects.
func (c Class) Expected() validate.Class {
	switch c {
	case TruncatedField, ExtraField:
		return validate.BadRow
	case GarbledTimestamp, SwappedColumns, MixedTimeLayout:
		return validate.BadTimestamp
	case OutOfRangeTimestamp:
		return validate.TimestampOutOfRange
	case NegativeDowntime:
		return validate.NegativeDowntime
	case AbsurdDowntime:
		return validate.AbsurdDowntime
	case DuplicateRow:
		return validate.DuplicateRecord
	case OverlappingOutage:
		return validate.OverlappingOutage
	case UnknownSystem:
		return validate.UnknownSystem
	case UnknownNode:
		return validate.UnknownNode
	case EncodingJunk:
		return validate.EncodingJunk
	default:
		return 0
	}
}

// Injection is the ground truth of one injected fault.
type Injection struct {
	// Line is the 1-based line in the corrupted CSV the fault lands on
	// (for inserted rows, the inserted line).
	Line int
	// Class is the injected fault class.
	Class Class
}

// Spec configures a corruption pass.
type Spec struct {
	// Seed makes the pass deterministic.
	Seed int64
	// Rate is the fraction of data rows corrupted, in (0,1]; 0 means the
	// default of 0.25.
	Rate float64
	// Classes restricts the fault mix; nil draws from every class.
	Classes []Class
}

func (s Spec) rate() float64 {
	if s.Rate <= 0 {
		return 0.25
	}
	if s.Rate > 1 {
		return 1
	}
	return s.Rate
}

func (s Spec) classes() []Class {
	if len(s.Classes) == 0 {
		return Classes
	}
	return s.Classes
}

// CorruptFailures serializes the failures into the canonical CSV and
// corrupts data rows per the spec, returning the corrupted bytes and the
// injection ground truth in line order.
func CorruptFailures(failures []trace.Failure, spec Spec) ([]byte, []Injection, error) {
	var clean bytes.Buffer
	if err := trace.WriteFailures(&clean, failures); err != nil {
		return nil, nil, fmt.Errorf("faultinject: serialize: %w", err)
	}
	rows := strings.Split(strings.TrimRight(clean.String(), "\n"), "\n")
	rng := rand.New(rand.NewSource(spec.Seed))
	classes := spec.classes()
	rate := spec.rate()

	var out strings.Builder
	var injected []Injection
	line := 0
	emit := func(fields []string) int {
		line++
		out.WriteString(strings.Join(fields, ","))
		out.WriteByte('\n')
		return line
	}
	for i, row := range rows {
		fields := strings.Split(row, ",")
		if i == 0 {
			emit(fields) // header
			continue
		}
		if rng.Float64() >= rate {
			emit(fields)
			continue
		}
		c := classes[rng.Intn(len(classes))]
		switch c {
		case TruncatedField:
			drop := 1 + rng.Intn(3)
			injected = append(injected, Injection{emit(fields[:len(fields)-drop]), c})
		case ExtraField:
			injected = append(injected, Injection{emit(append(fields, "junk")), c})
		case GarbledTimestamp:
			fields[2] = "yesterday-ish"
			injected = append(injected, Injection{emit(fields), c})
		case OutOfRangeTimestamp:
			fields[2] = "1805-07-14T09:30:00Z"
			injected = append(injected, Injection{emit(fields), c})
		case NegativeDowntime:
			fields[7] = "-3600"
			injected = append(injected, Injection{emit(fields), c})
		case AbsurdDowntime:
			fields[7] = strconv.Itoa(400 * 24 * 3600) // ~400 days
			injected = append(injected, Injection{emit(fields), c})
		case DuplicateRow:
			emit(fields)
			injected = append(injected, Injection{emit(fields), c})
		case OverlappingOutage:
			emit(fields)
			over := append([]string(nil), fields...)
			over[3] = "HUMAN" // no subtype columns to keep consistent
			if fields[3] == "HUMAN" {
				over[3] = "NET"
			}
			over[4], over[5], over[6] = "", "", ""
			over[7] = "7200"
			injected = append(injected, Injection{emit(over), c})
		case UnknownSystem:
			fields[0] = "99999"
			injected = append(injected, Injection{emit(fields), c})
		case UnknownNode:
			fields[1] = "9999999"
			injected = append(injected, Injection{emit(fields), c})
		case SwappedColumns:
			fields[2], fields[3] = fields[3], fields[2]
			injected = append(injected, Injection{emit(fields), c})
		case MixedTimeLayout:
			if t, err := time.Parse(time.RFC3339, fields[2]); err == nil {
				fields[2] = t.Format("2006-01-02 15:04:05")
			} else {
				fields[2] = "2004-13-40 99:99:99"
			}
			injected = append(injected, Injection{emit(fields), c})
		case EncodingJunk:
			fields[0] = "\uFEFF\x01" + fields[0]
			injected = append(injected, Injection{emit(fields), c})
		default:
			emit(fields)
		}
	}
	return []byte(out.String()), injected, nil
}

// CorruptDataset writes ds into dir as a normal dataset directory and then
// replaces its failures table with a corrupted copy, returning the
// injection ground truth.
func CorruptDataset(dir string, ds *trace.Dataset, spec Spec) ([]Injection, error) {
	if err := trace.SaveDir(dir, ds); err != nil {
		return nil, err
	}
	data, injected, err := CorruptFailures(ds.Failures, spec)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, trace.FailuresFile), data, 0o644); err != nil {
		return nil, err
	}
	return injected, nil
}

// sampleFailures is a tiny handwritten clean failure set used for fuzz seed
// corpora: two systems, several nodes, all six categories represented.
func sampleFailures() []trace.Failure {
	base := time.Date(2004, 3, 1, 8, 0, 0, 0, time.UTC)
	return []trace.Failure{
		{System: 20, Node: 0, Time: base, Category: trace.Hardware, HW: trace.Memory, Downtime: 2 * time.Hour},
		{System: 20, Node: 3, Time: base.Add(26 * time.Hour), Category: trace.Software, SW: trace.PFS, Downtime: 45 * time.Minute},
		{System: 20, Node: 7, Time: base.Add(50 * time.Hour), Category: trace.Environment, Env: trace.PowerOutage, Downtime: 5 * time.Hour},
		{System: 18, Node: 1, Time: base.Add(80 * time.Hour), Category: trace.Network, Downtime: 30 * time.Minute},
		{System: 18, Node: 2, Time: base.Add(120 * time.Hour), Category: trace.Human, Downtime: 10 * time.Minute},
		{System: 18, Node: 2, Time: base.Add(200 * time.Hour), Category: trace.Undetermined, Downtime: 0},
	}
}

// SeedCorpus returns a fuzz seed corpus for failure-CSV readers: one clean
// serialization plus one corrupted blob per fault class, all deterministic
// in the seed.
func SeedCorpus(seed int64) [][]byte {
	fs := sampleFailures()
	var clean bytes.Buffer
	if err := trace.WriteFailures(&clean, fs); err != nil {
		panic(err) // cannot fail on an in-memory buffer
	}
	out := [][]byte{clean.Bytes()}
	for _, c := range Classes {
		data, _, err := CorruptFailures(fs, Spec{Seed: seed + int64(c), Rate: 1, Classes: []Class{c}})
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}
	return out
}
