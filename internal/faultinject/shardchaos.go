package faultinject

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ShardFabric is the surface a sharded server exposes to chaos: how many
// fault domains it has, and operator-style kill and stall controls. The
// server package implements it; keeping the interface here lets chaos
// drivers (flags, scripts, tests) stay decoupled from the server's types.
type ShardFabric interface {
	// ShardCount reports the number of shards.
	ShardCount() int
	// KillShard marks a shard dead as if its goroutine had panicked: it
	// stops serving immediately and its journal is fenced.
	KillShard(i int) error
	// StallShard makes the shard's next calls sleep for d before answering,
	// simulating an overloaded or partitioned fault domain. Stalls do not
	// mark the shard down — only missed heartbeats do.
	StallShard(i int, d time.Duration) error
}

// ShardChaosSpec configures the shard-level chaos driver. Zero values
// disable each fault: KillShard < 0 means no kill, StallProb 0 means no
// stalls.
type ShardChaosSpec struct {
	// Seed drives the PRNG; the same seed injects the same fault sequence.
	Seed int64
	// KillShard is the shard index to kill once (-1 = never kill).
	KillShard int
	// KillAfter is how long to wait before the one-shot kill.
	KillAfter time.Duration
	// StallProb is the per-tick chance of stalling a random shard.
	StallProb float64
	// MaxStall bounds each injected stall (uniform in (0, MaxStall]).
	MaxStall time.Duration
	// Interval is the stall-roll tick spacing (default 250ms).
	Interval time.Duration
	// Sleep overrides the inter-fault wait for tests that must not block;
	// Run still honours context cancellation between faults.
	Sleep func(time.Duration)
}

// ShardChaosStats counts what the driver did.
type ShardChaosStats struct {
	Kills  uint64
	Stalls uint64
}

// ShardChaos injects shard deaths and stalls into a ShardFabric on a
// deterministic schedule. Build with NewShardChaos, then Run it against a
// live fabric.
type ShardChaos struct {
	spec  ShardChaosSpec
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand

	kills  atomic.Uint64
	stalls atomic.Uint64
}

// NewShardChaos builds a shard chaos driver from a spec.
func NewShardChaos(spec ShardChaosSpec) *ShardChaos {
	if spec.Interval <= 0 {
		spec.Interval = 250 * time.Millisecond
	}
	return &ShardChaos{
		spec:  spec,
		sleep: spec.Sleep,
		rng:   rand.New(rand.NewSource(spec.Seed)),
	}
}

// Run drives the fault schedule against fab until the context is cancelled:
// the one-shot kill after KillAfter, then periodic stall rolls. It blocks;
// callers normally run it in a goroutine alongside the server.
func (c *ShardChaos) Run(ctx context.Context, fab ShardFabric) {
	n := fab.ShardCount()
	if n == 0 {
		return
	}
	if c.spec.KillShard >= 0 && c.spec.KillShard < n {
		if !c.wait(ctx, c.spec.KillAfter) {
			return
		}
		if err := fab.KillShard(c.spec.KillShard); err == nil {
			c.kills.Add(1)
		}
	}
	if c.spec.StallProb <= 0 || c.spec.MaxStall <= 0 {
		return
	}
	for {
		if !c.wait(ctx, c.spec.Interval) {
			return
		}
		i, d, ok := c.rollStall(n)
		if !ok {
			continue
		}
		if err := fab.StallShard(i, d); err == nil {
			c.stalls.Add(1)
		}
	}
}

// rollStall draws one stall decision under the lock so concurrent use keeps
// a deterministic PRNG stream.
func (c *ShardChaos) rollStall(n int) (shard int, d time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.spec.StallProb {
		return 0, 0, false
	}
	return c.rng.Intn(n), time.Duration(1 + c.rng.Int63n(int64(c.spec.MaxStall))), true
}

// wait sleeps d (via the override when set) and reports whether the context
// is still live.
func (c *ShardChaos) wait(ctx context.Context, d time.Duration) bool {
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err() == nil
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Stats returns what the driver has done so far.
func (c *ShardChaos) Stats() ShardChaosStats {
	return ShardChaosStats{Kills: c.kills.Load(), Stalls: c.stalls.Load()}
}
