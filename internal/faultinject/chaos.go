// Serving-side chaos: a deterministic HTTP middleware that injects the
// faults a live failure-analysis service meets in production — latency
// spikes, spurious 5xx responses, aborted connections — plus byte-level
// corruptors for write-ahead-log images (torn tails, bit flips, appended
// garbage). Everything is driven by one seed, so a failing chaos test
// reproduces exactly.
package faultinject

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosSpec configures the HTTP chaos injector. Probabilities are in
// [0,1] and independent: a request can be delayed and then aborted.
type ChaosSpec struct {
	// Seed drives the injector's PRNG; the same seed over the same request
	// sequence injects the same faults.
	Seed int64
	// LatencyProb is the chance a request is delayed before handling.
	LatencyProb float64
	// MaxLatency bounds the injected delay (uniform in (0, MaxLatency]).
	MaxLatency time.Duration
	// ErrorProb is the chance a request is answered 503 without reaching
	// the handler.
	ErrorProb float64
	// AbortProb is the chance the connection is torn down mid-request, the
	// client seeing a network error rather than an HTTP response.
	AbortProb float64
	// Sleep overrides time.Sleep for tests that must not wait.
	Sleep func(time.Duration)
}

// ChaosStats counts what the injector did.
type ChaosStats struct {
	Requests uint64
	Delays   uint64
	Errors   uint64
	Aborts   uint64
}

// Chaos is the middleware state. Build with NewChaos, wrap a handler with
// Middleware.
type Chaos struct {
	spec  ChaosSpec
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand

	requests atomic.Uint64
	delays   atomic.Uint64
	errors   atomic.Uint64
	aborts   atomic.Uint64
}

// NewChaos builds a chaos injector from a spec.
func NewChaos(spec ChaosSpec) *Chaos {
	sleep := spec.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Chaos{
		spec:  spec,
		sleep: sleep,
		rng:   rand.New(rand.NewSource(spec.Seed)),
	}
}

// roll draws the per-request fault decisions under the lock, so concurrent
// requests see a deterministic PRNG stream even if their interleaving is
// not.
func (c *Chaos) roll() (delay time.Duration, fail, abort bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spec.LatencyProb > 0 && c.rng.Float64() < c.spec.LatencyProb && c.spec.MaxLatency > 0 {
		delay = time.Duration(1 + c.rng.Int63n(int64(c.spec.MaxLatency)))
	}
	fail = c.spec.ErrorProb > 0 && c.rng.Float64() < c.spec.ErrorProb
	abort = c.spec.AbortProb > 0 && c.rng.Float64() < c.spec.AbortProb
	return delay, fail, abort
}

// Middleware wraps next with fault injection. Aborts panic with
// http.ErrAbortHandler, which net/http turns into a closed connection —
// exactly what a crashed or partitioned server looks like to a client.
func (c *Chaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		delay, fail, abort := c.roll()
		if delay > 0 {
			c.delays.Add(1)
			c.sleep(delay)
		}
		if abort {
			c.aborts.Add(1)
			panic(http.ErrAbortHandler)
		}
		if fail {
			c.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "chaos: injected error", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Stats returns what the injector has done so far.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Requests: c.requests.Load(),
		Delays:   c.delays.Load(),
		Errors:   c.errors.Load(),
		Aborts:   c.aborts.Load(),
	}
}

// TearTail returns data with the last n bytes removed — a torn final write,
// the canonical crash artifact a WAL open must absorb. n is clamped.
func TearTail(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	return append([]byte(nil), data[:len(data)-n]...)
}

// FlipBit returns data with one bit flipped at offset off (clamped into
// range) — silent media corruption a CRC must catch.
func FlipBit(data []byte, off int, bit uint) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	if off < 0 {
		off = 0
	}
	if off >= len(out) {
		off = len(out) - 1
	}
	out[off] ^= 1 << (bit % 8)
	return out
}

// AppendGarbage returns data with n pseudo-random bytes appended — a write
// that landed past the true tail.
func AppendGarbage(data []byte, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	for i := 0; i < n; i++ {
		out = append(out, byte(rng.Intn(256)))
	}
	return out
}
