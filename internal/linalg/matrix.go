// Package linalg is a small dense linear-algebra substrate sized for the
// regression fits in this repository: column-major-free row-major matrices,
// products, and symmetric positive-definite solves (Cholesky with a
// partial-pivoting Gaussian fallback). The iteratively reweighted least
// squares (IRLS) fitter in internal/regress solves (X^T W X) beta = X^T W z
// every iteration through this package.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions do not match.
var ErrShape = errors.New("linalg: dimension mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d) * (%dx%d)", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: (%dx%d) * vec(%d)", ErrShape, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// WeightedGram computes X^T diag(w) X for design matrix X (rows are
// observations); a nil w means unit weights.
func WeightedGram(x *Matrix, w []float64) (*Matrix, error) {
	if w != nil && len(w) != x.rows {
		return nil, fmt.Errorf("%w: %d weights for %d rows", ErrShape, len(w), x.rows)
	}
	p := x.cols
	out := New(p, p)
	for i := 0; i < x.rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		row := x.data[i*p : (i+1)*p]
		for a := 0; a < p; a++ {
			va := wi * row[a]
			if va == 0 {
				continue
			}
			for b := a; b < p; b++ {
				out.data[a*p+b] += va * row[b]
			}
		}
	}
	// Mirror the upper triangle.
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			out.data[b*p+a] = out.data[a*p+b]
		}
	}
	return out, nil
}

// WeightedXtY computes X^T diag(w) y; a nil w means unit weights.
func WeightedXtY(x *Matrix, w, y []float64) ([]float64, error) {
	if len(y) != x.rows || (w != nil && len(w) != x.rows) {
		return nil, fmt.Errorf("%w: weightedXtY with %d rows, %d y, %d w", ErrShape, x.rows, len(y), len(w))
	}
	p := x.cols
	out := make([]float64, p)
	for i := 0; i < x.rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		c := wi * y[i]
		if c == 0 {
			continue
		}
		row := x.data[i*p : (i+1)*p]
		for j, a := range row {
			out[j] += c * a
		}
	}
	return out, nil
}

// Cholesky computes the lower-triangular factor L with A = L L^T for a
// symmetric positive-definite matrix A. It returns ErrSingular when a
// pivot is non-positive.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveChol solves A x = b for symmetric positive-definite A via Cholesky.
func SolveChol(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %dx%d with rhs(%d)", ErrShape, n, n, len(b))
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveGauss solves A x = b by Gaussian elimination with partial pivoting.
// It works for any non-singular square A and is the fallback when Cholesky
// rejects a barely-indefinite IRLS normal matrix.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: gauss on %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: gauss %dx%d with rhs(%d)", ErrShape, n, n, len(b))
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.data[col*n+j], m.data[piv*n+j] = m.data[piv*n+j], m.data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.data[r*n+j] -= f * m.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A x = b preferring Cholesky and falling back to Gaussian
// elimination.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	if x, err := SolveChol(a, b); err == nil {
		return x, nil
	}
	return SolveGauss(a, b)
}

// IsSymmetric reports whether the matrix is symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Inverse returns A^{-1} by solving against identity columns. Symmetric
// matrices go through the Cholesky path (with a Gaussian fallback);
// non-symmetric ones use Gaussian elimination directly, since Cholesky
// would silently read only the lower triangle.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, a.rows, a.cols)
	}
	solve := SolveGauss
	if a.IsSymmetric(0) {
		solve = SolveSPD
	}
	n := a.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
