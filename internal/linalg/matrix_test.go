package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g", name, got, want)
	}
}

func TestBasicsAndShape(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must not share storage")
	}
	row := m.Row(1)
	row[0] = 42
	if m.At(1, 0) == 42 {
		t.Error("Row must return a copy")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Error("FromRows layout wrong")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Error("ragged rows should fail with ErrShape")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Error("empty FromRows should give 0x0")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			approx(t, "mul", p.At(i, j), want[i][j], 1e-12)
		}
	}
	tr := a.T()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Error("transpose wrong")
	}
	if _, err := a.Mul(New(3, 3)); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch should fail")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mulvec0", v[0], -2, 1e-12)
	approx(t, "mulvec1", v[1], -2, 1e-12)
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Error("bad vector length should fail")
	}
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p, _ := a.Mul(i3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			approx(t, "A*I", p.At(i, j), a.At(i, j), 1e-12)
		}
	}
}

func TestWeightedGram(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 2}, {1, 3}, {1, 4}})
	w := []float64{1, 2, 3}
	g, err := WeightedGram(x, w)
	if err != nil {
		t.Fatal(err)
	}
	// Manual: sum w_i * x_i x_i^T.
	approx(t, "g00", g.At(0, 0), 6, 1e-12)
	approx(t, "g01", g.At(0, 1), 1*2+2*3+3*4, 1e-12)
	approx(t, "g11", g.At(1, 1), 1*4+2*9+3*16, 1e-12)
	approx(t, "symmetry", g.At(1, 0), g.At(0, 1), 0)
	// Nil weights = unit weights.
	g2, _ := WeightedGram(x, nil)
	approx(t, "unit g00", g2.At(0, 0), 3, 1e-12)
	if _, err := WeightedGram(x, []float64{1}); !errors.Is(err, ErrShape) {
		t.Error("bad weight length should fail")
	}
}

func TestWeightedXtY(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 2}, {1, 3}})
	v, err := WeightedXtY(x, []float64{2, 1}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "xty0", v[0], 2*10+1*20, 1e-12)
	approx(t, "xty1", v[1], 2*2*10+3*1*20, 1e-12)
}

func TestCholeskyAndSolve(t *testing.T) {
	// SPD matrix with known factor: A = [[4,2],[2,3]].
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "l00", l.At(0, 0), 2, 1e-12)
	approx(t, "l10", l.At(1, 0), 1, 1e-12)
	approx(t, "l11", l.At(1, 1), math.Sqrt(2), 1e-12)
	x, err := SolveChol(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x = b.
	approx(t, "chol x0", 4*x[0]+2*x[1], 10, 1e-10)
	approx(t, "chol x1", 2*x[0]+3*x[1], 8, 1e-10)
	// Non-SPD rejected.
	bad, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := Cholesky(bad); !errors.Is(err, ErrSingular) {
		t.Error("indefinite matrix should fail Cholesky")
	}
}

func TestSolveGauss(t *testing.T) {
	// Non-symmetric system requiring pivoting.
	a, _ := FromRows([][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}})
	b := []float64{-8, 0, 3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got := 0.0
		for j := 0; j < 3; j++ {
			got += a.At(i, j) * x[j]
		}
		approx(t, "gauss residual", got, b[i], 1e-10)
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGauss(sing, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Error("singular matrix should fail")
	}
}

func TestInverse(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// Known inverse: 1/10 [[6,-7],[-2,4]].
	approx(t, "inv00", inv.At(0, 0), 0.6, 1e-10)
	approx(t, "inv01", inv.At(0, 1), -0.7, 1e-10)
	approx(t, "inv10", inv.At(1, 0), -0.2, 1e-10)
	approx(t, "inv11", inv.At(1, 1), 0.4, 1e-10)
}

func TestSolveSPDRandomProperty(t *testing.T) {
	// For random SPD A and x: SolveSPD(A, A x) returns x.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := 1 + rng.Intn(6)
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		// A = M M^T + I is SPD.
		a, _ := m.Mul(m.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
