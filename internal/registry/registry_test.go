package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRes is a Resource that counts Close calls.
type fakeRes struct {
	name   string
	closed atomic.Int32
}

func (f *fakeRes) Close() error {
	f.closed.Add(1)
	return nil
}

func newTestRegistry(t *testing.T, root string) *Registry {
	t.Helper()
	r, err := New(Config{
		Root: root,
		Build: func(name, dir string, m Manifest) (Resource, error) {
			return &fakeRes{name: name}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"prod", "prod", true},
		{"PROD", "prod", true},
		{"Blue-Gene_2", "blue-gene_2", true},
		{"a", "a", true},
		{"0day", "0day", true},
		{"", "", false},
		{"-dash", "", false},
		{"_под", "", false},
		{"has space", "", false},
		{"dots.bad", "", false},
		{"slash/bad", "", false},
		{"shard-001", "", false},
		{"SHARD-7", "", false},
		{"sharded", "sharded", true},
		{"ab€", "", false},
		{"0123456789012345678901234567890123", "", false}, // 34 chars
	}
	for _, c := range cases {
		got, err := Canonical(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Canonical(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.in, got, c.want)
		}
		// Fixed point: re-canonicalizing an accepted name is a no-op.
		again, err := Canonical(got)
		if err != nil || again != got {
			t.Errorf("Canonical not a fixed point: %q -> %q -> %q (%v)", c.in, got, again, err)
		}
	}
}

func TestCreateAcquireRelease(t *testing.T) {
	r := newTestRegistry(t, "")
	tn, err := r.Create("Prod", Manifest{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name() != "prod" {
		t.Fatalf("name = %q, want prod", tn.Name())
	}
	if _, err := r.Create("prod", Manifest{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}

	if _, _, err := r.Acquire("prod", "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong token: %v, want ErrUnauthorized", err)
	}
	if _, _, err := r.Acquire("prod", ""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing token: %v, want ErrUnauthorized", err)
	}
	if _, _, err := r.Acquire("nope", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown name: %v, want ErrNotFound", err)
	}
	got, release, err := r.Acquire("prod", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if got != tn {
		t.Fatal("Acquire returned a different tenant")
	}
	release()
	release() // idempotent

	// Tokenless tenants are open to all callers.
	if _, err := r.Create("open", Manifest{}); err != nil {
		t.Fatal(err)
	}
	_, release2, err := r.Acquire("open", "anything")
	if err != nil {
		t.Fatalf("tokenless acquire: %v", err)
	}
	release2()
}

func TestManifestRoundTripOpenAll(t *testing.T) {
	root := t.TempDir()
	r := newTestRegistry(t, root)
	spec := json.RawMessage(`{"seed":7,"scale":0.1}`)
	if _, err := r.Create("alpha", Manifest{Token: "t", Quota: Quota{MaxEvents: 99}, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	// Simulate shard WAL dirs and stray files sharing the root: OpenAll
	// must skip them.
	if err := os.MkdirAll(filepath.Join(root, "alpha", "shard-000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "000001.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "shard-000"), 0o755); err != nil {
		t.Fatal(err)
	}

	var built []string
	r2, err := New(Config{
		Root: root,
		Build: func(name, dir string, m Manifest) (Resource, error) {
			built = append(built, name)
			var gotSpec, wantSpec bytes.Buffer
			json.Compact(&gotSpec, m.Spec)
			json.Compact(&wantSpec, spec)
			if m.Token != "t" || m.Quota.MaxEvents != 99 || gotSpec.String() != wantSpec.String() {
				t.Errorf("manifest did not round-trip: %+v", m)
			}
			if dir != filepath.Join(root, "alpha") {
				t.Errorf("dir = %q", dir)
			}
			return &fakeRes{name: name}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.OpenAll(); err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 || built[0] != "alpha" {
		t.Fatalf("rebuilt %v, want [alpha]", built)
	}
	if names := r2.Names(); len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDrainWaitsForRelease(t *testing.T) {
	r := newTestRegistry(t, "")
	if _, err := r.Create("d", Manifest{}); err != nil {
		t.Fatal(err)
	}
	_, release, err := r.Acquire("d", "")
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- r.Drain(context.Background(), "d") }()

	// New acquisitions are rejected once draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, rel, err := r.Acquire("d", "")
		if errors.Is(err, ErrDraining) {
			break
		}
		if err == nil {
			rel() // drain goroutine not scheduled yet
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned before release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not return after release")
	}

	// Drain with a dead context while pinned reports the context error.
	r2 := newTestRegistry(t, "")
	if _, err := r2.Create("d", Manifest{}); err != nil {
		t.Fatal(err)
	}
	_, release2, _ := r2.Acquire("d", "")
	defer release2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r2.Drain(ctx, "d"); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with canceled ctx: %v", err)
	}
}

func TestDeleteRemovesDir(t *testing.T) {
	root := t.TempDir()
	r := newTestRegistry(t, root)
	tn, err := r.Create("gone", Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	res := tn.Resource().(*fakeRes)
	dir := tn.Dir()
	if _, err := os.Stat(filepath.Join(dir, "tenant.json")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(context.Background(), "gone"); err != nil {
		t.Fatal(err)
	}
	if res.closed.Load() != 1 {
		t.Fatalf("resource closed %d times, want 1", res.closed.Load())
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("dir still present: %v", err)
	}
	if _, err := r.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	// The name is free again.
	if _, err := r.Create("gone", Manifest{}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	r := newTestRegistry(t, "")
	tn, err := r.Create("c", Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	res := tn.Resource().(*fakeRes)
	if err := r.Close("c"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close("c"); err != nil {
		t.Fatal(err)
	}
	if res.closed.Load() != 1 {
		t.Fatalf("resource closed %d times, want 1", res.closed.Load())
	}
	if tn.State() != StateClosed {
		t.Fatalf("state = %v", tn.State())
	}
}

// TestConcurrentLifecycle hammers create/acquire/drain/close/delete from
// many goroutines; run under -race it is the registry's memory model
// check.
func TestConcurrentLifecycle(t *testing.T) {
	root := t.TempDir()
	r := newTestRegistry(t, root)
	const tenants = 8
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("t%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Create(name, Manifest{}); err != nil {
				t.Error(err)
				return
			}
			var inner sync.WaitGroup
			for j := 0; j < 4; j++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for k := 0; k < 50; k++ {
						_, release, err := r.AcquireAny(name)
						if err != nil {
							return // draining already
						}
						_ = r.Names()
						release()
					}
				}()
			}
			inner.Wait()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if i%2 == 0 {
				if err := r.Delete(ctx, name); err != nil {
					t.Error(err)
				}
			} else {
				if err := r.Drain(ctx, name); err != nil {
					t.Error(err)
				}
				if err := r.Close(name); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	for _, tn := range r.All() {
		if tn.State() != StateClosed {
			t.Errorf("tenant %s state %v after close", tn.Name(), tn.State())
		}
	}
}
