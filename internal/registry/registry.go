// Package registry owns named datasets ("tenants") for a multi-tenant
// serving process. Each tenant is an opaque Resource — in practice a full
// store + analysis engine + correlation miner + shard fabric + WAL tree —
// built by a caller-supplied constructor and parked under a canonical name.
//
// The registry is the single authority on tenant lifecycle:
//
//	Create  -> persist a manifest, build the resource, state Open
//	Acquire -> authenticate and pin a tenant for one request
//	Drain   -> stop admitting new acquisitions, wait for in-flight ones
//	Close   -> release the resource (journals synced and closed)
//	Delete  -> Drain + Close + remove the tenant's directory tree
//
// Durable tenants live under <root>/<name>/: a tenant.json manifest beside
// the tenant's WAL tree (<root>/<name>/shard-NNN/...). OpenAll rebuilds
// every manifested tenant at boot, which combined with deterministic
// dataset generation gives kill-and-recover semantics per tenant: the
// manifest pins the generator spec, the WAL tree replays the ingest.
package registry

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Lifecycle and access errors, surfaced to HTTP handlers for status
// mapping (404 / 401 / 503 / 409).
var (
	ErrNotFound     = errors.New("registry: dataset not found")
	ErrUnauthorized = errors.New("registry: unauthorized")
	ErrDraining     = errors.New("registry: dataset is draining")
	ErrExists       = errors.New("registry: dataset already exists")
)

// State is a tenant's lifecycle position.
type State int

const (
	// StateOpen admits new acquisitions.
	StateOpen State = iota
	// StateDraining rejects new acquisitions while in-flight ones finish.
	StateDraining
	// StateClosed means the resource has been released.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Quota bounds one tenant's resource appetite. Zero fields mean
// unlimited; MaxConcurrent/MaxQueue feed the server's admission layer,
// MaxEvents caps lifetime ingested events.
type Quota struct {
	MaxEvents     int64 `json:"max_events,omitempty"`
	MaxConcurrent int   `json:"max_concurrent,omitempty"`
	MaxQueue      int   `json:"max_queue,omitempty"`
}

// Manifest is the durable description of a tenant: everything needed to
// rebuild it from scratch at boot. Spec is opaque to the registry — the
// Build constructor interprets it (dataset seed, scale, shard count...).
type Manifest struct {
	Name  string          `json:"name"`
	Token string          `json:"token,omitempty"`
	Quota Quota           `json:"quota,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
}

// Resource is what the registry manages per tenant. Close must flush and
// release durable state (sync WALs, close journals); it is called at most
// once, after all acquisitions have been released.
type Resource interface {
	Close() error
}

// Config assembles a Registry.
type Config struct {
	// Root is the directory holding one subdirectory per durable tenant.
	// Empty means tenants are memory-only: no manifests are written and
	// OpenAll finds nothing.
	Root string
	// Build constructs a tenant's resource. dir is the tenant's directory
	// ("" for memory-only registries) where its WAL tree lives. Required.
	Build func(name, dir string, m Manifest) (Resource, error)
	// Logf receives lifecycle logs; nil discards them.
	Logf func(format string, args ...any)
}

// Registry is a concurrency-safe named-tenant table. Build with New.
type Registry struct {
	root  string
	build func(name, dir string, m Manifest) (Resource, error)
	logf  func(format string, args ...any)

	mu      sync.Mutex
	tenants map[string]*Tenant
}

// Tenant is one registered dataset. Accessors are safe for concurrent
// use; the resource itself is pinned via Acquire's release function.
type Tenant struct {
	name string
	dir  string
	man  Manifest
	res  Resource

	mu     sync.Mutex
	state  State
	refs   int
	idleCh chan struct{}
}

// New builds a registry. Call OpenAll afterwards to rebuild durable
// tenants from their manifests.
func New(cfg Config) (*Registry, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("registry: Config.Build is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Registry{
		root:    cfg.Root,
		build:   cfg.Build,
		logf:    logf,
		tenants: make(map[string]*Tenant),
	}, nil
}

const maxNameLen = 32

// Canonical lowercases and validates a tenant name: 1..32 characters of
// [a-z0-9_-], not starting with '-' or '_', and never starting with
// "shard-" (which would collide with the WAL tree's shard directories
// under a shared root). Canonical is a fixed point: Canonical(Canonical(x))
// == Canonical(x) for every accepted x.
func Canonical(name string) (string, error) {
	if name == "" {
		return "", fmt.Errorf("registry: empty dataset name")
	}
	if len(name) > maxNameLen {
		return "", fmt.Errorf("registry: dataset name longer than %d characters", maxNameLen)
	}
	b := []byte(name)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
			b[i] = c
		}
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return "", fmt.Errorf("registry: dataset name %q has invalid character %q", name, c)
		}
	}
	canon := string(b)
	if canon[0] == '-' || canon[0] == '_' {
		return "", fmt.Errorf("registry: dataset name %q must start with a letter or digit", name)
	}
	if strings.HasPrefix(canon, "shard-") {
		return "", fmt.Errorf("registry: dataset name %q collides with the shard directory namespace", name)
	}
	return canon, nil
}

const manifestFile = "tenant.json"

// Create registers a new tenant: canonicalize the name, persist the
// manifest (durable registries only), build the resource, and open it.
// The write-then-build order means a crash mid-Create leaves a manifest
// that OpenAll will rebuild — never a resource without a manifest.
func (r *Registry) Create(name string, m Manifest) (*Tenant, error) {
	canon, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	m.Name = canon

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[canon]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, canon)
	}
	dir := ""
	if r.root != "" {
		dir = filepath.Join(r.root, canon)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
		}
		if err := writeManifest(dir, m); err != nil {
			return nil, err
		}
	}
	res, err := r.build(canon, dir, m)
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, fmt.Errorf("registry: building dataset %s: %w", canon, err)
	}
	t := &Tenant{name: canon, dir: dir, man: m, res: res, state: StateOpen}
	r.tenants[canon] = t
	r.logf("registry: dataset %s created", canon)
	return t, nil
}

// Adopt registers an externally built resource under a name without
// touching disk — the default tenant, whose store and WAL the command
// line owns, enters the registry this way.
func (r *Registry) Adopt(name string, res Resource, m Manifest) (*Tenant, error) {
	canon, err := Canonical(name)
	if err != nil {
		return nil, err
	}
	m.Name = canon
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[canon]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, canon)
	}
	t := &Tenant{name: canon, man: m, res: res, state: StateOpen}
	r.tenants[canon] = t
	return t, nil
}

// OpenAll scans the root for tenant manifests and rebuilds each one.
// A tenant that fails to build fails the whole boot: silently serving a
// subset of durable datasets would be worse than not starting.
func (r *Registry) OpenAll() error {
	if r.root == "" {
		return nil
	}
	entries, err := os.ReadDir(r.root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("registry: scanning %s: %w", r.root, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(r.root, e.Name())
		raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
		if err != nil {
			if os.IsNotExist(err) {
				continue // a shard-NNN dir or unrelated directory
			}
			return fmt.Errorf("registry: reading manifest in %s: %w", dir, err)
		}
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("registry: decoding manifest in %s: %w", dir, err)
		}
		canon, err := Canonical(m.Name)
		if err != nil {
			return fmt.Errorf("registry: manifest in %s: %w", dir, err)
		}
		r.mu.Lock()
		_, exists := r.tenants[canon]
		r.mu.Unlock()
		if exists {
			continue
		}
		res, err := r.build(canon, dir, m)
		if err != nil {
			return fmt.Errorf("registry: reopening dataset %s: %w", canon, err)
		}
		t := &Tenant{name: canon, dir: dir, man: m, res: res, state: StateOpen}
		r.mu.Lock()
		r.tenants[canon] = t
		r.mu.Unlock()
		r.logf("registry: dataset %s reopened", canon)
	}
	return nil
}

// Get returns a tenant by canonical name without authenticating or
// pinning it (status pages, metrics).
func (r *Registry) Get(name string) (*Tenant, error) {
	r.mu.Lock()
	t, ok := r.tenants[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return t, nil
}

// Acquire authenticates and pins a tenant for one request. The release
// function must be called exactly when the request finishes (it is
// idempotent); Drain waits for all outstanding releases.
func (r *Registry) Acquire(name, token string) (*Tenant, func(), error) {
	t, err := r.Get(name)
	if err != nil {
		return nil, nil, err
	}
	if !t.tokenOK(token) {
		return nil, nil, fmt.Errorf("%w: dataset %s", ErrUnauthorized, name)
	}
	release, err := t.acquire()
	if err != nil {
		return nil, nil, err
	}
	return t, release, nil
}

// AcquireAny pins a tenant while skipping token authentication — the
// admin-token bypass and internal comparative queries use it.
func (r *Registry) AcquireAny(name string) (*Tenant, func(), error) {
	t, err := r.Get(name)
	if err != nil {
		return nil, nil, err
	}
	release, err := t.acquire()
	if err != nil {
		return nil, nil, err
	}
	return t, release, nil
}

// Drain moves a tenant to StateDraining and waits until every
// outstanding acquisition has been released or ctx expires. Draining an
// already draining or closed tenant just waits again.
func (r *Registry) Drain(ctx context.Context, name string) error {
	t, err := r.Get(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.state == StateOpen {
		t.state = StateDraining
	}
	if t.refs == 0 {
		t.mu.Unlock()
		return nil
	}
	if t.idleCh == nil {
		t.idleCh = make(chan struct{})
	}
	ch := t.idleCh
	t.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases a tenant's resource. The tenant must be drained first;
// closing with acquisitions in flight is the caller's race to lose.
// Close is idempotent.
func (r *Registry) Close(name string) error {
	t, err := r.Get(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.state == StateClosed {
		t.mu.Unlock()
		return nil
	}
	t.state = StateClosed
	t.mu.Unlock()
	if err := t.res.Close(); err != nil {
		return fmt.Errorf("registry: closing dataset %s: %w", name, err)
	}
	r.logf("registry: dataset %s closed", name)
	return nil
}

// Delete drains, closes, deregisters and removes a tenant's directory
// tree. After Delete the name is free for reuse.
func (r *Registry) Delete(ctx context.Context, name string) error {
	if err := r.Drain(ctx, name); err != nil {
		return err
	}
	if err := r.Close(name); err != nil {
		return err
	}
	r.mu.Lock()
	t := r.tenants[name]
	delete(r.tenants, name)
	r.mu.Unlock()
	if t != nil && t.dir != "" {
		if err := os.RemoveAll(t.dir); err != nil {
			return fmt.Errorf("registry: removing %s: %w", t.dir, err)
		}
	}
	r.logf("registry: dataset %s deleted", name)
	return nil
}

// CloseAll drains nothing and closes every tenant — process shutdown,
// where in-flight requests have already been joined by the server.
func (r *Registry) CloseAll() error {
	var first error
	for _, name := range r.Names() {
		if err := r.Close(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Names returns all registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// All returns all tenants sorted by name.
func (r *Registry) All() []*Tenant {
	r.mu.Lock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// Name returns the tenant's canonical name.
func (t *Tenant) Name() string { return t.name }

// Dir returns the tenant's directory ("" for memory-only tenants).
func (t *Tenant) Dir() string { return t.dir }

// Resource returns the tenant's resource. Callers must hold an
// acquisition (or know the tenant cannot be closed under them).
func (t *Tenant) Resource() Resource { return t.res }

// Manifest returns the tenant's manifest.
func (t *Tenant) Manifest() Manifest { return t.man }

// State returns the tenant's lifecycle state.
func (t *Tenant) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// tokenOK checks an auth token in constant time. An empty manifest token
// means the tenant is open to all callers.
func (t *Tenant) tokenOK(token string) bool {
	if t.man.Token == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(t.man.Token)) == 1
}

// acquire pins the tenant, returning an idempotent release.
func (t *Tenant) acquire() (func(), error) {
	t.mu.Lock()
	if t.state != StateOpen {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDraining, t.name)
	}
	t.refs++
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.refs--
			if t.refs == 0 && t.idleCh != nil {
				close(t.idleCh)
				t.idleCh = nil
			}
			t.mu.Unlock()
		})
	}, nil
}

// writeManifest persists a manifest atomically (write temp, rename).
func writeManifest(dir string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: encoding manifest: %w", err)
	}
	raw = append(raw, '\n')
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("registry: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("registry: installing manifest: %w", err)
	}
	return nil
}
