package checkpoint_test

import (
	"fmt"
	"time"

	"github.com/hpcfail/hpcfail/internal/checkpoint"
	"github.com/hpcfail/hpcfail/internal/trace"
)

func ExampleReplay() {
	start := time.Date(2004, 1, 1, 0, 0, 0, 0, time.UTC)
	period := trace.Interval{Start: start, End: start.Add(1000 * time.Hour)}
	// Two clustered failures: the second lands in the first's shadow.
	failures := []time.Time{start.Add(100 * time.Hour), start.Add(104 * time.Hour)}

	fixed, _ := checkpoint.Replay(period, failures, checkpoint.Fixed{Every: 24 * time.Hour}, 6*time.Minute)
	risk, _ := checkpoint.Replay(period, failures, checkpoint.RiskAware{
		Base: 24 * time.Hour, Risky: 2 * time.Hour, Window: 48 * time.Hour,
	}, 6*time.Minute)

	fmt.Printf("fixed: lost %s\n", fixed.Lost)
	fmt.Printf("risk-aware: lost %s\n", risk.Lost)
	// Output:
	// fixed: lost 8h0m0s
	// risk-aware: lost 4h0m0s
}

func ExampleYoungInterval() {
	// A 10-minute checkpoint against a 5000-hour MTBF.
	opt := checkpoint.YoungInterval(10*time.Minute, 5000*time.Hour)
	fmt.Println(opt.Round(time.Hour))
	// Output: 41h0m0s
}
