// Package checkpoint turns the paper's correlation findings into an
// application: checkpoint-interval policies for long-running jobs, replayed
// against node failure histories. A fixed-interval policy near Young's
// optimum is the classical baseline; the risk-aware policy exploits
// Section III (a node that just failed is 5-20X more likely to fail again)
// by checkpointing more aggressively inside the post-failure window.
//
// The serving layer reuses the same Policy interface to space its own
// engine snapshots: internal/risk.Journal consults a Policy (passing the
// engine's last observed failure as lastFailure) to decide when the next
// WAL-compacting snapshot is due — so snapshot cadence and the paper's
// checkpoint-interval machinery share one vocabulary, and a risk-aware
// policy snapshots more eagerly right after a failure burst, exactly when
// the state is changing fastest.
package checkpoint

import (
	"errors"
	"math"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
)

// Policy chooses the next checkpoint interval.
type Policy interface {
	// Interval returns the checkpoint spacing to use at time t, given the
	// time of the node's most recent failure (zero when none yet).
	Interval(t, lastFailure time.Time) time.Duration
	// Name labels the policy in reports.
	Name() string
}

// Fixed checkpoints at a constant interval.
type Fixed struct {
	Every time.Duration
}

// Interval implements Policy.
func (f Fixed) Interval(time.Time, time.Time) time.Duration { return f.Every }

// Name implements Policy.
func (f Fixed) Name() string { return "fixed " + f.Every.String() }

// RiskAware checkpoints at Base spacing normally and at Risky spacing for
// Window after any failure of the node.
type RiskAware struct {
	Base   time.Duration
	Risky  time.Duration
	Window time.Duration
}

// Interval implements Policy.
func (r RiskAware) Interval(t, lastFailure time.Time) time.Duration {
	if !lastFailure.IsZero() && t.Sub(lastFailure) < r.Window {
		return r.Risky
	}
	return r.Base
}

// Name implements Policy.
func (r RiskAware) Name() string { return "risk-aware " + r.Base.String() + "/" + r.Risky.String() }

// YoungInterval returns Young's first-order optimum checkpoint interval
// sqrt(2 * cost * MTBF) for the given checkpoint cost and mean time
// between failures.
func YoungInterval(cost, mtbf time.Duration) time.Duration {
	if cost <= 0 || mtbf <= 0 {
		return 0
	}
	return time.Duration(math.Sqrt(2 * float64(cost) * float64(mtbf)))
}

// Result aggregates a replay.
type Result struct {
	// Lost is work lost to failures (time since last checkpoint at each
	// failure).
	Lost time.Duration
	// Overhead is time spent writing checkpoints.
	Overhead time.Duration
	// Checkpoints and Failures count the replayed events.
	Checkpoints int
	Failures    int
}

// Total returns lost work plus checkpoint overhead — the quantity a policy
// minimizes.
func (r Result) Total() time.Duration { return r.Lost + r.Overhead }

// Add accumulates another result.
func (r *Result) Add(o Result) {
	r.Lost += o.Lost
	r.Overhead += o.Overhead
	r.Checkpoints += o.Checkpoints
	r.Failures += o.Failures
}

// ErrBadConfig reports an invalid replay configuration.
var ErrBadConfig = errors.New("checkpoint: invalid configuration")

// Replay simulates an application running on one node over period,
// checkpointing per policy at the given per-checkpoint cost, and losing
// work back to the last checkpoint at each failure time. failureTimes must
// be sorted ascending.
func Replay(period trace.Interval, failureTimes []time.Time, p Policy, cost time.Duration) (Result, error) {
	if p == nil || cost < 0 || !period.End.After(period.Start) {
		return Result{}, ErrBadConfig
	}
	var res Result
	lastCkpt := period.Start
	var lastFailure time.Time
	t := period.Start
	fi := 0
	next := t.Add(p.Interval(t, lastFailure))
	for t.Before(period.End) {
		var failAt time.Time
		if fi < len(failureTimes) {
			failAt = failureTimes[fi]
		}
		if !failAt.IsZero() && failAt.Before(next) {
			if failAt.Before(t) {
				return Result{}, ErrBadConfig // unsorted failure times
			}
			res.Failures++
			res.Lost += failAt.Sub(lastCkpt)
			lastCkpt = failAt // restart from the last checkpoint's state
			lastFailure = failAt
			t = failAt
			fi++
			next = t.Add(p.Interval(t, lastFailure))
			continue
		}
		if !next.Before(period.End) {
			break
		}
		res.Checkpoints++
		res.Overhead += cost
		lastCkpt = next
		t = next
		next = t.Add(p.Interval(t, lastFailure))
	}
	return res, nil
}

// ReplayNodes replays every node of the given systems against its failure
// history and returns the aggregate. The failures function supplies each
// node's sorted failure times (typically Index.NodeFailures mapped to
// times).
func ReplayNodes(systems []trace.SystemInfo, failures func(system, node int) []time.Time, p Policy, cost time.Duration) (Result, error) {
	var agg Result
	for _, s := range systems {
		for n := 0; n < s.Nodes; n++ {
			r, err := Replay(s.Period, failures(s.ID, n), p, cost)
			if err != nil {
				return Result{}, err
			}
			agg.Add(r)
		}
	}
	return agg, nil
}

// Compare replays several policies over the same nodes and returns results
// in policy order.
func Compare(systems []trace.SystemInfo, failures func(system, node int) []time.Time, cost time.Duration, policies ...Policy) ([]Result, error) {
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		r, err := ReplayNodes(systems, failures, p, cost)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
