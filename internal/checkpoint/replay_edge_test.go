package checkpoint

import (
	"errors"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
)

// A failure landing exactly on a checkpoint boundary loses nothing: the
// checkpoint commits first, then the failure rolls back zero work.
func TestReplayFailureAtCheckpointBoundary(t *testing.T) {
	res, err := Replay(period(25), []time.Time{tAt(10)}, Fixed{Every: 10 * time.Hour}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	if res.Lost != 0 {
		t.Errorf("lost = %v, want 0 (checkpoint commits before the failure)", res.Lost)
	}
	// Contrast: one second before the boundary loses a full interval.
	res, err = Replay(period(25), []time.Time{tAt(10).Add(-time.Second)}, Fixed{Every: 10 * time.Hour}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10*time.Hour - time.Second; res.Lost != want {
		t.Errorf("lost = %v, want %v", res.Lost, want)
	}
}

// A checkpoint cost exceeding the checkpoint interval is pathological but
// legal: the replay still terminates and charges full overhead per commit.
func TestReplayCostLongerThanInterval(t *testing.T) {
	res, err := Replay(period(10), nil, Fixed{Every: time.Hour}, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 9 {
		t.Fatalf("checkpoints = %d, want 9 (hours 1..9; hour 10 hits the period end)", res.Checkpoints)
	}
	if want := 18 * time.Hour; res.Overhead != want {
		t.Errorf("overhead = %v, want %v", res.Overhead, want)
	}
	if res.Lost != 0 || res.Total() != res.Overhead {
		t.Errorf("lost = %v, total = %v", res.Lost, res.Total())
	}
}

// An empty period (Start == End) is a configuration error, not a silent
// zero-result.
func TestReplayEmptyPeriod(t *testing.T) {
	empty := trace.Interval{Start: tAt(5), End: tAt(5)}
	if _, err := Replay(empty, nil, Fixed{Every: time.Hour}, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty period: err = %v, want ErrBadConfig", err)
	}
}

// A failure before the first checkpoint ever fires loses work back to the
// period start.
func TestReplayFailureBeforeFirstCheckpoint(t *testing.T) {
	res, err := Replay(period(25), []time.Time{tAt(3)}, Fixed{Every: 10 * time.Hour}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * time.Hour; res.Lost != want {
		t.Errorf("lost = %v, want %v", res.Lost, want)
	}
}
