package checkpoint

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
)

func tAt(h float64) time.Time {
	return time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h * float64(time.Hour)))
}

func period(hours float64) trace.Interval {
	return trace.Interval{Start: tAt(0), End: tAt(hours)}
}

func TestYoungInterval(t *testing.T) {
	// sqrt(2 * 10min * 1000h) = sqrt(2*600s*3.6e6s) ... check via formula.
	got := YoungInterval(10*time.Minute, 1000*time.Hour)
	want := time.Duration(math.Sqrt(2 * float64(10*time.Minute) * float64(1000*time.Hour)))
	if got != want {
		t.Errorf("young = %v, want %v", got, want)
	}
	if YoungInterval(0, time.Hour) != 0 || YoungInterval(time.Minute, 0) != 0 {
		t.Error("degenerate Young inputs should give 0")
	}
}

func TestReplayNoFailures(t *testing.T) {
	res, err := Replay(period(100), nil, Fixed{Every: 10 * time.Hour}, 6*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints at 10,20,...,90 (100 is not strictly before end): 9.
	if res.Checkpoints != 9 {
		t.Errorf("checkpoints = %d, want 9", res.Checkpoints)
	}
	if res.Lost != 0 || res.Failures != 0 {
		t.Errorf("unexpected losses: %+v", res)
	}
	if res.Overhead != 9*6*time.Minute {
		t.Errorf("overhead = %v", res.Overhead)
	}
	if res.Total() != res.Overhead {
		t.Error("total should equal overhead without failures")
	}
}

func TestReplayLostWork(t *testing.T) {
	// Fixed every 10h; failure at h=25: last checkpoint at 20 -> lose 5h.
	res, err := Replay(period(100), []time.Time{tAt(25)}, Fixed{Every: 10 * time.Hour}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.Lost != 5*time.Hour {
		t.Errorf("lost = %v, want 5h", res.Lost)
	}
}

func TestReplayRiskAware(t *testing.T) {
	pol := RiskAware{Base: 10 * time.Hour, Risky: 1 * time.Hour, Window: 24 * time.Hour}
	// Failures at 25 and 30: under the risk-aware policy the second
	// failure happens inside the risky window, with checkpoints every 1h,
	// so at most 1h is lost.
	failures := []time.Time{tAt(25), tAt(30)}
	risky, err := Replay(period(100), failures, pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Replay(period(100), failures, Fixed{Every: 10 * time.Hour}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if risky.Lost >= fixed.Lost {
		t.Errorf("risk-aware lost %v should beat fixed %v", risky.Lost, fixed.Lost)
	}
	// The second failure loses at most the risky interval.
	if risky.Lost > 5*time.Hour+1*time.Hour {
		t.Errorf("risky lost = %v", risky.Lost)
	}
}

func TestReplayClusteredFailuresFavorRiskAware(t *testing.T) {
	// Clustered failures: pairs 3h apart every ~200h.
	var failures []time.Time
	for base := 50.0; base < 900; base += 200 {
		failures = append(failures, tAt(base), tAt(base+3))
	}
	cost := 5 * time.Minute
	fixed := Fixed{Every: 20 * time.Hour}
	risky := RiskAware{Base: 20 * time.Hour, Risky: 2 * time.Hour, Window: 48 * time.Hour}
	fr, err := Replay(period(1000), failures, fixed, cost)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(period(1000), failures, risky, cost)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total() >= fr.Total() {
		t.Errorf("risk-aware total %v should beat fixed %v on clustered failures", rr.Total(), fr.Total())
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Replay(period(10), nil, nil, time.Minute); !errors.Is(err, ErrBadConfig) {
		t.Error("nil policy should fail")
	}
	if _, err := Replay(trace.Interval{Start: tAt(5), End: tAt(1)}, nil, Fixed{Every: time.Hour}, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("inverted period should fail")
	}
	if _, err := Replay(period(10), []time.Time{tAt(8), tAt(2)}, Fixed{Every: time.Hour}, 0); !errors.Is(err, ErrBadConfig) {
		t.Error("unsorted failures should fail")
	}
}

func TestReplayNodesAndCompare(t *testing.T) {
	systems := []trace.SystemInfo{
		{ID: 1, Nodes: 3, Group: trace.Group1, ProcsPerNode: 4, Period: period(500)},
	}
	failTimes := map[int][]time.Time{
		0: {tAt(100), tAt(103)},
		1: {tAt(250)},
	}
	get := func(system, node int) []time.Time { return failTimes[node] }
	cost := 5 * time.Minute
	results, err := Compare(systems, get, cost,
		Fixed{Every: 24 * time.Hour},
		RiskAware{Base: 24 * time.Hour, Risky: 3 * time.Hour, Window: 48 * time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Failures != 3 || results[1].Failures != 3 {
		t.Errorf("failure counts: %d, %d", results[0].Failures, results[1].Failures)
	}
	if results[1].Lost >= results[0].Lost {
		t.Errorf("risk-aware should lose less on the clustered node: %v vs %v",
			results[1].Lost, results[0].Lost)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Fixed{Every: time.Hour}).Name() == "" {
		t.Error("fixed name empty")
	}
	if (RiskAware{Base: time.Hour, Risky: time.Minute, Window: time.Hour}).Name() == "" {
		t.Error("risk-aware name empty")
	}
}
