package lanl_test

import (
	"bytes"
	"testing"

	"github.com/hpcfail/hpcfail/internal/faultinject"
	"github.com/hpcfail/hpcfail/internal/lanl"
	"github.com/hpcfail/hpcfail/internal/validate"
)

const lanlSeed = `System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software
20,0,07/14/2003 09:30,07/14/2003 11:00,,,Memory Dimm,,,,
20,3,07/15/2003 02:10,,120,,,,,Unresolvable,
18,12,08/01/2003 17:45,08/01/2003 18:45,,Power Outage,,,,,
2,1,08/03/2003 12:00,08/03/2003 13:30,,,,,,,"DST crash"
`

// FuzzImportLANL asserts the LANL record importer never panics on
// arbitrary input. Seeds cover the real LANL column layout, the
// fault-injection corpus (trace-format corruptions, which the importer
// must reject gracefully rather than crash on), and structural edge
// cases like truncated quotes and header-only files.
func FuzzImportLANL(f *testing.F) {
	f.Add([]byte(lanlSeed))
	for _, seed := range faultinject.SeedCorpus(2) {
		f.Add(seed)
	}
	f.Add([]byte(""))
	f.Add([]byte("System,nodenumz,Prob Started\n"))
	f.Add([]byte("System,nodenumz,Prob Started\n20,0,\"07/14/2003"))
	f.Add([]byte("\xEF\xBB\xBFSystem,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software\n20,0,07/14/2003 09:30,,,,CPU,,,,\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := lanl.ImportFailures(bytes.NewReader(data), lanl.DefaultMapping())
		if err == nil && res == nil {
			t.Fatal("nil result without error")
		}
		// The full pipeline behind hpcimport must be equally crash-proof.
		for _, p := range []validate.Policy{validate.DefaultPolicy(), validate.RepairPolicy()} {
			ds, rep, err := lanl.ImportDatasetWith(bytes.NewReader(data), lanl.DefaultMapping(), p)
			if err != nil {
				continue
			}
			if ds == nil || rep == nil {
				t.Fatal("nil dataset or report without error")
			}
			if verr := ds.Validate(); verr != nil {
				t.Fatalf("imported dataset fails its own invariants: %v", verr)
			}
		}
	})
}
