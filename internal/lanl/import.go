// Package lanl imports the publicly released Los Alamos National Laboratory
// operational data ("Operational Data to Support and Enable Computer
// Science Research", LA-UR-05-7318 — the dataset behind the DSN'13 study)
// into the trace schema, so the analyses in this repository run on the real
// records as well as on synthetic ones.
//
// The release is a set of CSV tables whose exact headers have varied across
// mirrors, so the importer is driven by a Mapping: a declaration of which
// column holds which field, plus the timestamp layout. DefaultMapping
// matches the headers of the original failure-data release; adjust it if
// your copy differs. Root causes appear as one free-text subcategory per
// high-level category column (e.g. the "Hardware" column holding "Memory
// Dimm"); the importer keyword-matches those strings onto the trace
// taxonomy and keeps unmatched text as the generic subtype.
package lanl

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
)

// Mapping declares the column layout of a LANL-style failure table.
type Mapping struct {
	// System, Node are the column names of the system ID and node number.
	System string
	Node   string
	// Started and Fixed are the outage start and repair timestamps.
	Started string
	Fixed   string
	// Downtime optionally names a column with the outage length in
	// minutes; when empty (or the cell is blank) the downtime is derived
	// from Fixed minus Started.
	Downtime string
	// RootCauses maps each high-level category to the column holding its
	// subcategory text. For a given record exactly one of these columns
	// is expected to be non-empty.
	RootCauses map[trace.Category]string
	// TimeLayouts are tried in order when parsing timestamps.
	TimeLayouts []string
}

// DefaultMapping matches the headers of the public LANL failure release.
func DefaultMapping() Mapping {
	return Mapping{
		System:   "System",
		Node:     "nodenumz",
		Started:  "Prob Started",
		Fixed:    "Prob Fixed",
		Downtime: "Down Time",
		RootCauses: map[trace.Category]string{
			trace.Environment:  "Facilities",
			trace.Hardware:     "Hardware",
			trace.Human:        "Human Error",
			trace.Network:      "Network",
			trace.Software:     "Software",
			trace.Undetermined: "Undetermined",
		},
		TimeLayouts: []string{
			"01/02/2006 15:04",
			"1/2/2006 15:04",
			"2006-01-02 15:04:05",
			time.RFC3339,
		},
	}
}

// ErrBadHeader is returned when required columns are missing.
var ErrBadHeader = errors.New("lanl: required column missing from header")

// Issue records one non-fatal import problem (a skipped row).
type Issue struct {
	Line int
	Err  error
}

// Result bundles imported failures with per-row issues.
type Result struct {
	Failures []trace.Failure
	// Lines holds the 1-based CSV line of each imported failure, parallel
	// to Failures.
	Lines  []int
	Issues []Issue
}

// ImportFailures parses a LANL-style failure CSV. Rows that cannot be
// parsed are skipped and reported in Result.Issues rather than aborting the
// import — real field data is never perfectly clean.
func ImportFailures(r io.Reader, m Mapping) (*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("lanl: read header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[normalize(h)] = i
	}
	need := func(name string) (int, error) {
		if name == "" {
			return -1, nil
		}
		i, ok := col[normalize(name)]
		if !ok {
			return -1, fmt.Errorf("%w: %q", ErrBadHeader, name)
		}
		return i, nil
	}
	sysIdx, err := need(m.System)
	if err != nil {
		return nil, err
	}
	nodeIdx, err := need(m.Node)
	if err != nil {
		return nil, err
	}
	startIdx, err := need(m.Started)
	if err != nil {
		return nil, err
	}
	fixedIdx, _ := need(m.Fixed) // optional
	downIdx, _ := need(m.Downtime)
	causeIdx := make(map[trace.Category]int, len(m.RootCauses))
	for cat, name := range m.RootCauses {
		i, err := need(name)
		if err != nil {
			return nil, err
		}
		causeIdx[cat] = i
	}
	if len(causeIdx) == 0 {
		return nil, fmt.Errorf("%w: no root-cause columns mapped", ErrBadHeader)
	}

	out := &Result{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			out.Issues = append(out.Issues, Issue{Line: line, Err: err})
			continue
		}
		f, err := parseRow(rec, m, sysIdx, nodeIdx, startIdx, fixedIdx, downIdx, causeIdx)
		if err != nil {
			out.Issues = append(out.Issues, Issue{Line: line, Err: err})
			continue
		}
		out.Failures = append(out.Failures, f)
		out.Lines = append(out.Lines, line)
	}
}

func parseRow(rec []string, m Mapping, sysIdx, nodeIdx, startIdx, fixedIdx, downIdx int, causeIdx map[trace.Category]int) (trace.Failure, error) {
	var f trace.Failure
	get := func(i int) string {
		if i < 0 || i >= len(rec) {
			return ""
		}
		return strings.TrimSpace(rec[i])
	}
	var err error
	if f.System, err = strconv.Atoi(get(sysIdx)); err != nil {
		return f, fmt.Errorf("system: %w", err)
	}
	if f.Node, err = strconv.Atoi(get(nodeIdx)); err != nil {
		return f, fmt.Errorf("node: %w", err)
	}
	if f.Time, err = parseTime(get(startIdx), m.TimeLayouts); err != nil {
		return f, fmt.Errorf("started: %w", err)
	}
	// Downtime: explicit minutes column first, then fixed-started.
	if s := get(downIdx); s != "" {
		mins, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return f, fmt.Errorf("downtime: %w", err)
		}
		f.Downtime = time.Duration(mins * float64(time.Minute))
	} else if s := get(fixedIdx); s != "" {
		fixed, err := parseTime(s, m.TimeLayouts)
		if err != nil {
			return f, fmt.Errorf("fixed: %w", err)
		}
		if fixed.After(f.Time) {
			f.Downtime = fixed.Sub(f.Time)
		}
	}
	// Root cause: the single non-empty category column wins; ties go to
	// the first in canonical category order (mirrors the LANL convention
	// of one classification per record).
	found := false
	for _, cat := range trace.Categories {
		i, ok := causeIdx[cat]
		if !ok {
			continue
		}
		text := get(i)
		if text == "" {
			continue
		}
		f.Category = cat
		applySubtype(&f, text)
		found = true
		break
	}
	if !found {
		return f, errors.New("no root cause recorded")
	}
	return f, nil
}

func parseTime(s string, layouts []string) (time.Time, error) {
	if s == "" {
		return time.Time{}, errors.New("empty timestamp")
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("unparseable timestamp %q", s)
}

func normalize(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

// applySubtype keyword-matches the free-text subcategory onto the trace
// taxonomy. Matching is deliberately permissive: LANL operators wrote
// variants like "Memory Dimm", "DIMM", "CPU", "Power Supply", "Power
// Outage", "San Fan", etc.
func applySubtype(f *trace.Failure, text string) {
	t := normalize(text)
	has := func(subs ...string) bool {
		for _, s := range subs {
			if strings.Contains(t, s) {
				return true
			}
		}
		return false
	}
	switch f.Category {
	case trace.Hardware:
		switch {
		case has("dimm", "memory", "simm", "ram"):
			f.HW = trace.Memory
		case has("cpu", "processor"):
			f.HW = trace.CPU
		case has("power supply", "power-supply", "psu"):
			f.HW = trace.PowerSupply
		case has("fan", "blower"):
			f.HW = trace.Fan
		case has("msc"):
			f.HW = trace.MSCBoard
		case has("midplane", "mid-plane", "mid plane"):
			f.HW = trace.Midplane
		case has("node board", "nodeboard", "motherboard", "system board", "mainboard"):
			f.HW = trace.NodeBoard
		case has("nic", "ethernet", "interface card", "adapter"):
			f.HW = trace.NIC
		default:
			f.HW = trace.OtherHW
		}
	case trace.Software:
		switch {
		case has("dst", "distributed storage"):
			f.SW = trace.DST
		case has("parallel file", "pfs", "scratch"):
			f.SW = trace.PFS
		case has("cluster file", "cfs"):
			f.SW = trace.CFS
		case has("patch", "upgrade"):
			f.SW = trace.PatchInstall
		case has("os", "kernel", "operating system"):
			f.SW = trace.OS
		default:
			f.SW = trace.OtherSW
		}
	case trace.Environment:
		switch {
		case has("outage", "power loss", "loss of power"):
			f.Env = trace.PowerOutage
		case has("spike", "surge", "glitch"):
			f.Env = trace.PowerSpike
		case has("ups"):
			f.Env = trace.UPS
		case has("chiller", "cooling", "a/c", "air cond"):
			f.Env = trace.Chillers
		default:
			f.Env = trace.OtherEnv
		}
	}
}

// NodeMeta carries per-node metadata from the release tables (install and
// production dates, node purpose), used to build SystemInfo records.
type NodeMeta struct {
	System       int
	Node         int
	Production   time.Time
	Decommission time.Time
}

// BuildSystems derives SystemInfo records from imported failures: node
// counts from the highest node ID seen, measurement periods from the first
// and last record per system, with the given architecture-group assignment
// (group-2 for the listed NUMA system IDs; everything else group-1).
// ProcsPerNode follows the study's convention (4 for group-1 SMPs, 128 for
// group-2 NUMA nodes).
func BuildSystems(failures []trace.Failure, group2 map[int]bool) []trace.SystemInfo {
	type agg struct {
		maxNode     int
		first, last time.Time
	}
	bySys := make(map[int]*agg)
	for _, f := range failures {
		a, ok := bySys[f.System]
		if !ok {
			a = &agg{maxNode: f.Node, first: f.Time, last: f.Time}
			bySys[f.System] = a
			continue
		}
		if f.Node > a.maxNode {
			a.maxNode = f.Node
		}
		if f.Time.Before(a.first) {
			a.first = f.Time
		}
		if f.Time.After(a.last) {
			a.last = f.Time
		}
	}
	out := make([]trace.SystemInfo, 0, len(bySys))
	for id, a := range bySys {
		info := trace.SystemInfo{
			ID:           id,
			Group:        trace.Group1,
			Nodes:        a.maxNode + 1,
			ProcsPerNode: 4,
			Period: trace.Interval{
				Start: a.first.Add(-time.Hour),
				End:   a.last.Add(time.Hour),
			},
		}
		if group2[id] {
			info.Group = trace.Group2
			info.ProcsPerNode = 128
		}
		out = append(out, info)
	}
	return out
}

// StudyGroup2 lists the group-2 (NUMA) system IDs of the DSN'13 study.
var StudyGroup2 = map[int]bool{2: true, 16: true, 23: true}

// ImportDataset imports a failure table and assembles a ready-to-analyze
// dataset (sorted, with derived SystemInfo records).
func ImportDataset(r io.Reader, m Mapping) (*trace.Dataset, *Result, error) {
	res, err := ImportFailures(r, m)
	if err != nil {
		return nil, nil, err
	}
	if len(res.Failures) == 0 {
		return nil, res, errors.New("lanl: no importable failure records")
	}
	ds := &trace.Dataset{
		Systems:  BuildSystems(res.Failures, StudyGroup2),
		Failures: res.Failures,
	}
	ds.Sort()
	return ds, res, nil
}

// ImportFile is the table name diagnostics from the policy-aware importer
// anchor to.
const ImportFile = "lanl-failures"

// classifyIssue maps an import issue onto the validation taxonomy: CSV-level
// problems are bad rows, timestamp problems bad timestamps, everything else
// a bad field.
func classifyIssue(err error) validate.Class {
	var pe *csv.ParseError
	switch {
	case errors.As(err, &pe):
		return validate.BadRow
	case strings.Contains(err.Error(), "timestamp"):
		return validate.BadTimestamp
	default:
		return validate.BadField
	}
}

// checkImported applies the policy's plausibility checks to one imported
// failure: epoch range, negative and absurd downtimes. Repair clamps
// downtimes; range violations are never repairable.
func checkImported(f trace.Failure, p validate.Policy) (trace.Failure, []validate.Diagnostic) {
	var ds []validate.Diagnostic
	if !p.InRange(f.Time) {
		ds = append(ds, validate.Diagnostic{Class: validate.TimestampOutOfRange, Severity: validate.Error,
			Msg: fmt.Sprintf("timestamp %s outside plausible epoch [%s, %s)",
				f.Time.Format(time.RFC3339), p.MinTime.Format(time.RFC3339), p.MaxTime.Format(time.RFC3339))})
	}
	if f.Downtime < 0 {
		if p.Mode == validate.Repair {
			ds = append(ds, validate.Diagnostic{Class: validate.NegativeDowntime, Severity: validate.Warning,
				Repaired: true, Msg: fmt.Sprintf("negative downtime %s clamped to 0", f.Downtime)})
			f.Downtime = 0
		} else {
			ds = append(ds, validate.Diagnostic{Class: validate.NegativeDowntime, Severity: validate.Error,
				Msg: fmt.Sprintf("negative downtime %s", f.Downtime)})
		}
	} else if p.AbsurdDowntime > 0 && f.Downtime > p.AbsurdDowntime {
		if p.Mode == validate.Repair {
			ds = append(ds, validate.Diagnostic{Class: validate.AbsurdDowntime, Severity: validate.Warning,
				Repaired: true, Msg: fmt.Sprintf("downtime %s clamped to %s", f.Downtime, p.AbsurdDowntime)})
			f.Downtime = p.AbsurdDowntime
		} else {
			ds = append(ds, validate.Diagnostic{Class: validate.AbsurdDowntime, Severity: validate.Error,
				Msg: fmt.Sprintf("absurd downtime %s (limit %s)", f.Downtime, p.AbsurdDowntime)})
		}
	}
	return f, ds
}

// ImportDatasetWith imports a failure table under a validation policy. On
// top of the row-level import it classifies every skipped row into the
// validation taxonomy, applies the policy's plausibility checks and repairs,
// runs the cross-record sanitizer (duplicates, overlapping outages) against
// the derived system catalog, and enforces the policy's error budget.
// Strict mode aborts on the first problem. The dataset and report are
// returned even when only the budget check fails, so callers can inspect
// what loaded.
func ImportDatasetWith(r io.Reader, m Mapping, p validate.Policy) (*trace.Dataset, *validate.Report, error) {
	rep := &validate.Report{}
	res, err := ImportFailures(r, m)
	if err != nil {
		return nil, rep, err
	}
	rep.Scan(ImportFile, len(res.Failures)+len(res.Issues))
	for _, is := range res.Issues {
		if p.Mode == validate.Strict {
			return nil, rep, fmt.Errorf("%s:%d: %v", ImportFile, is.Line, is.Err)
		}
		rep.Skip(ImportFile)
		rep.Add(validate.Diagnostic{File: ImportFile, Line: is.Line,
			Class: classifyIssue(is.Err), Severity: validate.Error, Msg: is.Err.Error()})
	}
	kept := make([]trace.Failure, 0, len(res.Failures))
	lines := make([]int, 0, len(res.Failures))
	for i, f := range res.Failures {
		line := 0
		if i < len(res.Lines) {
			line = res.Lines[i]
		}
		f, diags := checkImported(f, p)
		dead, fixed := false, false
		for _, d := range diags {
			d.File, d.Line = ImportFile, line
			if d.Severity == validate.Error {
				dead = true
				if p.Mode == validate.Strict {
					return nil, rep, fmt.Errorf("%s:%d: [%s] %s", ImportFile, line, d.Class, d.Msg)
				}
			}
			fixed = fixed || d.Repaired
			rep.Add(d)
		}
		if dead {
			rep.Skip(ImportFile)
			continue
		}
		if fixed {
			rep.Repair(ImportFile)
		}
		kept = append(kept, f)
		lines = append(lines, line)
	}
	if len(kept) == 0 {
		return nil, rep, errors.New("lanl: no importable failure records")
	}
	systems := BuildSystems(kept, StudyGroup2)
	fs, err := trace.SanitizeFailures(ImportFile, kept, lines, systems, p, rep)
	if err != nil {
		return nil, rep, err
	}
	ds := &trace.Dataset{Systems: systems, Failures: fs}
	ds.Sort()
	return ds, rep, p.CheckBudget(rep)
}
