package lanl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
)

const sampleCSV = `System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software
20,0,07/14/2003 09:30,07/14/2003 11:00,,,Memory Dimm,,,,
20,3,07/15/2003 02:10,,120,,,,,Unresolvable,
18,12,08/01/2003 17:45,08/01/2003 18:45,,Power Outage,,,,,
18,12,08/02/2003 03:00,,,,,,Switch Fabric,,
2,1,08/03/2003 12:00,08/03/2003 13:30,,,,,,,"DST crash"
20,7,08/04/2003 08:00,,30,,CPU,,,,
20,9,08/05/2003 08:00,,15,,San Fan Assembly,,,,
`

func TestImportFailures(t *testing.T) {
	res, err := ImportFailures(strings.NewReader(sampleCSV), DefaultMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("unexpected issues: %+v", res.Issues)
	}
	fs := res.Failures
	if len(fs) != 7 {
		t.Fatalf("failures = %d", len(fs))
	}
	// Row 1: memory DIMM with downtime from fixed-started.
	f := fs[0]
	if f.System != 20 || f.Node != 0 {
		t.Errorf("row1 ids: %+v", f)
	}
	if f.Category != trace.Hardware || f.HW != trace.Memory {
		t.Errorf("row1 cause: %v/%v", f.Category, f.HW)
	}
	if f.Downtime != 90*time.Minute {
		t.Errorf("row1 downtime = %v", f.Downtime)
	}
	if f.Time.Month() != time.July || f.Time.Day() != 14 || f.Time.Hour() != 9 {
		t.Errorf("row1 time = %v", f.Time)
	}
	// Row 2: undetermined with explicit downtime minutes.
	if fs[1].Category != trace.Undetermined || fs[1].Downtime != 2*time.Hour {
		t.Errorf("row2: %+v", fs[1])
	}
	// Row 3: facilities -> environment/power outage.
	if fs[2].Category != trace.Environment || fs[2].Env != trace.PowerOutage {
		t.Errorf("row3: %+v", fs[2])
	}
	// Row 4: network, no downtime info.
	if fs[3].Category != trace.Network || fs[3].Downtime != 0 {
		t.Errorf("row4: %+v", fs[3])
	}
	// Row 5: software DST.
	if fs[4].Category != trace.Software || fs[4].SW != trace.DST {
		t.Errorf("row5: %+v", fs[4])
	}
	// Rows 6-7: CPU and fan keyword matches.
	if fs[5].HW != trace.CPU || fs[6].HW != trace.Fan {
		t.Errorf("rows 6-7: %v, %v", fs[5].HW, fs[6].HW)
	}
}

func TestImportSkipsBadRows(t *testing.T) {
	bad := `System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software
X,0,07/14/2003 09:30,,,,CPU,,,,
20,0,not a time,,,,CPU,,,,
20,0,07/14/2003 09:30,,,,,,,,
20,1,07/14/2003 09:30,,,,CPU,,,,
`
	res, err := ImportFailures(strings.NewReader(bad), DefaultMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Errorf("failures = %d, want 1", len(res.Failures))
	}
	if len(res.Issues) != 3 {
		t.Errorf("issues = %d, want 3 (bad system, bad time, no cause)", len(res.Issues))
	}
	for _, is := range res.Issues {
		if is.Line < 2 {
			t.Errorf("issue line %d implausible", is.Line)
		}
	}
}

func TestImportMissingColumn(t *testing.T) {
	m := DefaultMapping()
	_, err := ImportFailures(strings.NewReader("foo,bar\n1,2\n"), m)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("want ErrBadHeader, got %v", err)
	}
}

func TestHeaderNormalization(t *testing.T) {
	// Extra whitespace and case differences in headers are tolerated.
	csv := "system, NODENUMZ ,prob  started,Prob Fixed,Down Time,Facilities,HARDWARE,Human Error,Network,Undetermined,Software\n" +
		"20,1,07/14/2003 09:30,,,,CPU,,,,\n"
	res, err := ImportFailures(strings.NewReader(csv), DefaultMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d", len(res.Failures))
	}
}

func TestSubtypeKeywords(t *testing.T) {
	cases := []struct {
		cat  trace.Category
		text string
		want interface{}
	}{
		{trace.Hardware, "Node Board", trace.NodeBoard},
		{trace.Hardware, "MSC Board", trace.MSCBoard},
		{trace.Hardware, "MidPlane", trace.Midplane},
		{trace.Hardware, "Ethernet Adapter", trace.NIC},
		{trace.Hardware, "Mysterious Widget", trace.OtherHW},
		{trace.Software, "Parallel File System", trace.PFS},
		{trace.Software, "Cluster File System", trace.CFS},
		{trace.Software, "Kernel panic", trace.OS},
		{trace.Software, "Patch install", trace.PatchInstall},
		{trace.Software, "Scheduler", trace.OtherSW},
		{trace.Environment, "UPS failure", trace.UPS},
		{trace.Environment, "Power Spike", trace.PowerSpike},
		{trace.Environment, "Chiller down", trace.Chillers},
		{trace.Environment, "Flood", trace.OtherEnv},
	}
	for _, c := range cases {
		f := trace.Failure{Category: c.cat}
		applySubtype(&f, c.text)
		var got interface{}
		switch c.cat {
		case trace.Hardware:
			got = f.HW
		case trace.Software:
			got = f.SW
		case trace.Environment:
			got = f.Env
		}
		if got != c.want {
			t.Errorf("%v %q -> %v, want %v", c.cat, c.text, got, c.want)
		}
	}
}

func TestBuildSystems(t *testing.T) {
	res, err := ImportFailures(strings.NewReader(sampleCSV), DefaultMapping())
	if err != nil {
		t.Fatal(err)
	}
	systems := BuildSystems(res.Failures, StudyGroup2)
	if len(systems) != 3 {
		t.Fatalf("systems = %d", len(systems))
	}
	byID := map[int]trace.SystemInfo{}
	for _, s := range systems {
		byID[s.ID] = s
	}
	if byID[20].Nodes != 10 { // max node 9
		t.Errorf("system 20 nodes = %d", byID[20].Nodes)
	}
	if byID[2].Group != trace.Group2 || byID[2].ProcsPerNode != 128 {
		t.Errorf("system 2 should be group-2 NUMA: %+v", byID[2])
	}
	if byID[18].Group != trace.Group1 {
		t.Error("system 18 should be group-1")
	}
	if !byID[18].Period.Start.Before(byID[18].Period.End) {
		t.Error("derived period empty")
	}
}

func TestImportDataset(t *testing.T) {
	ds, res, err := ImportDataset(strings.NewReader(sampleCSV), DefaultMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != len(ds.Failures) {
		t.Error("dataset should carry all imported failures")
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("imported dataset invalid: %v", err)
	}
	// Empty input errors.
	if _, _, err := ImportDataset(strings.NewReader("System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software\n"), DefaultMapping()); err == nil {
		t.Error("empty table should error")
	}
}

func TestImportDatasetWithPolicies(t *testing.T) {
	corrupt := sampleCSV +
		"20,0,not a time,,,,CPU,,,,\n" + // unparseable timestamp
		"20,5,08/06/2003 08:00,,-30,,CPU,,,,\n" // negative downtime

	// Lenient: both bad records are skipped with diagnostics.
	ds, rep, err := ImportDatasetWith(strings.NewReader(corrupt), DefaultMapping(), validate.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failures) != 7 {
		t.Errorf("lenient import kept %d failures, want 7", len(ds.Failures))
	}
	if rep.Skipped != 2 {
		t.Errorf("skipped = %d, want 2: %s", rep.Skipped, rep.Summary())
	}
	if !rep.Has(validate.BadTimestamp, ImportFile, 0) {
		t.Errorf("missing bad-timestamp diagnostic:\n%s", rep.Summary())
	}

	// Repair: the negative downtime is clamped instead of dropped.
	ds, rep, err = ImportDatasetWith(strings.NewReader(corrupt), DefaultMapping(), validate.RepairPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failures) != 8 {
		t.Errorf("repair import kept %d failures, want 8: %s", len(ds.Failures), rep.Summary())
	}
	if rep.Repaired == 0 {
		t.Errorf("repair import repaired nothing: %s", rep.Summary())
	}

	// Strict: the first bad record aborts the import.
	if _, _, err := ImportDatasetWith(strings.NewReader(corrupt), DefaultMapping(), validate.StrictPolicy()); err == nil {
		t.Error("strict import of corrupt input should fail")
	}

	// Tight budget: the import errors with ErrBudgetExceeded.
	p := validate.DefaultPolicy()
	p.MaxSkipRate = 0.1
	if _, _, err := ImportDatasetWith(strings.NewReader(corrupt), DefaultMapping(), p); !errors.Is(err, validate.ErrBudgetExceeded) {
		t.Errorf("want budget error, got %v", err)
	}
}
