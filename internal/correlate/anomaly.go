package correlate

import (
	"math"
	"sort"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// Anomaly is one node's deviation from its physical vicinity: how unlike
// its neighbors' the node's failure behavior is, decomposed into the three
// features the score sums.
type Anomaly struct {
	System int `json:"system"`
	Node   int `json:"node"`
	// Score is the ranking key: RateDev + MixDev + 0.5*BurstDev.
	Score float64 `json:"score"`
	// RateDev is the node's failure rate in robust z-score units of its
	// neighborhood (median/MAD); MixDev the shrunk half-L1 distance of the
	// node's category mix from the pooled neighborhood mix; BurstDev the
	// robust deviation of the node's inter-arrival burstiness.
	RateDev  float64 `json:"rate_dev"`
	MixDev   float64 `json:"mix_dev"`
	BurstDev float64 `json:"burst_dev"`
	// Rate is the node's failures per day over the measurement period.
	Rate float64 `json:"rate"`
	// Events is the node's failure count, Neighbors its vicinity size.
	Events    int `json:"events"`
	Neighbors int `json:"neighbors"`
}

// nodeStats are the per-node features the deviations compare.
type nodeStats struct {
	count int
	rate  float64
	mix   [NumCategories]float64 // category fractions (zero when count 0)
	cat   [NumCategories]int     // category counts
	burst float64                // Goh-Barabási burstiness, 0 below 3 events
}

// DetectAnomalies scores every node of the requested systems (all systems
// when none are given) against its physical vicinity and returns the top k
// (all when k <= 0), descending by score with (system, node) tie-breaks.
//
// A node's vicinity is its rack-mates plus its position peers — same
// in-rack height, other racks — from the system layout; nodes of systems
// without layouts (and placed nodes with otherwise empty vicinities)
// compare against all other nodes of the system. Deviations are robust
// (median/MAD with a floor) so one broken neighbor does not mask another,
// and small samples are shrunk toward zero so a node with two failures
// cannot out-score a persistently sick one. Everything derives from the
// snapshot's posting lists and sorted layout walks — the result is a pure
// function of the dataset, stable across runs and processes.
func DetectAnomalies(an *analysis.Analyzer, systems []int, k int) []Anomaly {
	didx := an.DatasetIndex()
	if didx == nil {
		didx = analysis.NewDatasetIndex(an.DS)
	}
	ids := systemIDs(an.DS, systems)
	var out []Anomaly
	for _, id := range ids {
		info, ok := an.DS.System(id)
		if !ok {
			continue
		}
		v, vok := didx.SystemView(id)
		if !vok {
			continue
		}
		days := info.Period.End.Sub(info.Period.Start).Hours() / 24
		if days < 1.0/24 {
			days = 1.0 / 24
		}
		stats := make([]nodeStats, info.Nodes)
		for n := 0; n < info.Nodes; n++ {
			stats[n] = nodeFeatures(v, n, days)
		}
		lay := an.DS.Layouts[id]
		for n := 0; n < info.Nodes; n++ {
			var neigh []int
			if lay != nil {
				neigh = mergeSorted(lay.RackMates(n), lay.PositionPeers(n))
			}
			if len(neigh) == 0 {
				neigh = allOthers(info.Nodes, n)
			}
			if len(neigh) == 0 {
				continue // single-node system: no vicinity to deviate from
			}
			out = append(out, scoreNode(id, n, &stats[n], stats, neigh, days))
		}
	}
	SortAnomalies(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SortAnomalies orders anomalies the way DetectAnomalies returns them:
// descending by score, ties ascending by (system, node). The sharded
// serving path re-sorts concatenated per-shard top-k lists with this, so a
// scattered merge ranks exactly like one detector over the union would.
func SortAnomalies(out []Anomaly) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].System != out[j].System {
			return out[i].System < out[j].System
		}
		return out[i].Node < out[j].Node
	})
}

// systemIDs resolves the requested system list (all when empty) to a
// sorted, deduplicated ID slice.
func systemIDs(ds *trace.Dataset, systems []int) []int {
	var ids []int
	if len(systems) > 0 {
		ids = append(ids, systems...)
	} else {
		for _, s := range ds.Systems {
			ids = append(ids, s.ID)
		}
	}
	sort.Ints(ids)
	uniq := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			uniq = append(uniq, id)
		}
	}
	return uniq
}

// nodeFeatures extracts one node's features from the posting lists.
func nodeFeatures(v analysis.SystemView, node int, days float64) nodeStats {
	var st nodeStats
	list := v.NodeClassList(node, trace.ClassAny)
	for _, q := range list {
		c := catIndex(v.Failure(int(q)).Category)
		if c < 0 {
			continue
		}
		st.count++
		st.cat[c]++
	}
	st.rate = float64(st.count) / days
	if st.count > 0 {
		for c := range st.mix {
			st.mix[c] = float64(st.cat[c]) / float64(st.count)
		}
	}
	st.burst = burstiness(v, list)
	return st
}

// burstiness is the Goh-Barabási coefficient (sigma-mu)/(sigma+mu) of the
// node's inter-arrival times: 0 for Poisson-like spacing, toward 1 for
// bursty clumps, toward -1 for metronomic spacing. Below 3 events (2
// gaps) it is defined as 0.
func burstiness(v analysis.SystemView, list []int32) float64 {
	if len(list) < 3 {
		return 0
	}
	gaps := make([]float64, 0, len(list)-1)
	for i := 1; i < len(list); i++ {
		gaps = append(gaps, v.Time(int(list[i])).Sub(v.Time(int(list[i-1]))).Hours())
	}
	var mu float64
	for _, g := range gaps {
		mu += g
	}
	mu /= float64(len(gaps))
	var ss float64
	for _, g := range gaps {
		d := g - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(gaps)))
	if sigma+mu == 0 {
		return 0
	}
	return (sigma - mu) / (sigma + mu)
}

// scoreNode computes the three deviations of one node against its
// neighborhood and assembles the anomaly record.
func scoreNode(system, node int, st *nodeStats, all []nodeStats, neigh []int, days float64) Anomaly {
	rates := make([]float64, 0, len(neigh))
	bursts := make([]float64, 0, len(neigh))
	var pooled [NumCategories]int
	pooledTotal := 0
	for _, m := range neigh {
		ns := &all[m]
		rates = append(rates, ns.rate)
		bursts = append(bursts, ns.burst)
		for c := range pooled {
			pooled[c] += ns.cat[c]
		}
		pooledTotal += ns.count
	}

	// Rate: robust z-score with a floored scale — the MAD of a healthy
	// rack is often 0, so the floor (a slice of the median plus one event
	// per period) keeps the score finite and damps single-event noise.
	med, mad := medianMAD(rates)
	rateScale := 1.4826*mad + 0.1*med + 1/days
	rateDev := math.Abs(st.rate-med) / rateScale

	// Mix: half-L1 (total variation) distance between the node's category
	// mix and the pooled neighborhood mix, shrunk by count/(count+4) so a
	// couple of unusual failures don't dominate.
	shrink := float64(st.count) / float64(st.count+4)
	var mixDev float64
	if st.count > 0 && pooledTotal > 0 {
		var l1 float64
		for c := range pooled {
			l1 += math.Abs(st.mix[c] - float64(pooled[c])/float64(pooledTotal))
		}
		mixDev = 0.5 * l1 * shrink
	}

	// Burstiness: same robust form on the bounded [-1, 1] coefficient.
	bmed, bmad := medianMAD(bursts)
	burstDev := math.Abs(st.burst-bmed) / (1.4826*bmad + 0.1) * shrink

	return Anomaly{
		System:    system,
		Node:      node,
		Score:     rateDev + mixDev + 0.5*burstDev,
		RateDev:   rateDev,
		MixDev:    mixDev,
		BurstDev:  burstDev,
		Rate:      st.rate,
		Events:    st.count,
		Neighbors: len(neigh),
	}
}

// medianMAD returns the median and the median absolute deviation of xs
// (0, 0 for an empty slice). xs is not modified.
func medianMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	med = mid(s)
	for i, x := range s {
		s[i] = math.Abs(x - med)
	}
	sort.Float64s(s)
	return med, mid(s)
}

func mid(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// mergeSorted merges two ascending int slices, deduplicating.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// allOthers returns 0..n-1 without node.
func allOthers(n, node int) []int {
	out := make([]int, 0, n-1)
	for m := 0; m < n; m++ {
		if m != node {
			out = append(out, m)
		}
	}
	return out
}
