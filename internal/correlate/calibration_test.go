package correlate_test

import (
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/correlate"
	"github.com/hpcfail/hpcfail/internal/simulate"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// plantedSystem builds a two-year, 200-node group-1 system with a layout.
func plantedSystem(id int) simulate.SystemConfig {
	return simulate.SystemConfig{
		Info: trace.SystemInfo{
			ID: id, Group: trace.Group1, Nodes: 200, ProcsPerNode: 4,
			Period: trace.Interval{
				Start: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
				End:   time.Date(2002, 1, 1, 0, 0, 0, 0, time.UTC),
			},
		},
		HasLayout: true, RacksPerRow: 8,
	}
}

// TestCalibrationPlantedPairs is the miner's ground-truth gate, in the mold
// of the CondProb/Hawkes calibration: a scenario with exactly four planted
// same-node triggering pairs — the diagonals HW→HW, SW→SW, NET→NET,
// ENV→ENV at 0.5 expected follow-ups with a one-day decay (the generator
// steps in node-days, so the week window sees essentially the whole
// kernel) — and everything else memoryless, with the base rate low enough
// that coincidental week-window co-occurrence (~0.02) stays under the 0.05
// confidence floor. Diagonal planting keeps the ground truth identifiable:
// planting A→B would also correlate the B-children of one A-chain with
// each other, making B→B "false" positives that are really properties of
// the generative model, not miner errors. At the default
// support/confidence thresholds the node-scope rule set must recover the
// planted diagonal with precision and recall of at least 0.8.
func TestCalibrationPlantedPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs the full planted dataset")
	}
	p := simulate.DefaultParams()
	p.Group1.BaseDaily = 0.008
	p.Group1.CategoryMix = [6]float64{} // ENV, HW, NET, SW only, equal shares
	p.Group1.CategoryMix[int(trace.Environment)-1] = 0.25
	p.Group1.CategoryMix[int(trace.Hardware)-1] = 0.25
	p.Group1.CategoryMix[int(trace.Network)-1] = 0.25
	p.Group1.CategoryMix[int(trace.Software)-1] = 0.25
	p.Group1.NodeTau = 1.0
	p.Group1.NodeTrigger = simulate.TriggerMatrix{}
	planted := []trace.Category{trace.Environment, trace.Hardware, trace.Network, trace.Software}
	for _, c := range planted {
		p.Group1.NodeTrigger[int(c)-1][int(c)-1] = 0.5
	}
	p.Group1.RackTrigger = simulate.TriggerMatrix{}
	p.Group1.SystemTrigger = simulate.TriggerMatrix{}
	p.MemTriggerBoost = 1
	p.LemonFraction = 0
	p.FrailtySigma = 0
	p.CosmicBeta = 0
	p.UsageCoupling = 0
	p.AggressionCoupling = 0
	p.JobStartCoupling = 0
	// PSU/fan cascades boost hardware hazards outside the trigger
	// matrices; off they stay out of the planted ground truth.
	p.PSUEffect = simulate.PowerEffect{}
	p.FanEffect = simulate.PowerEffect{}

	ds, err := simulate.Generate(simulate.Options{
		Seed:          91,
		Systems:       []simulate.SystemConfig{plantedSystem(1)},
		Params:        &p,
		DisableEvents: true, DisableNodeZero: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	rc, _, ok := correlate.NewMiner(st).Mine(trace.Week)
	if !ok {
		t.Fatal("week window not configured")
	}
	agg := rc.Aggregate()
	rules := agg.Rules(analysis.ScopeNode, 0, 0)

	want := make(map[[2]trace.Category]bool, len(planted))
	for _, c := range planted {
		want[[2]trace.Category{c, c}] = true
	}
	hits := 0
	for _, r := range rules {
		if want[[2]trace.Category{r.Anchor, r.Target}] {
			hits++
		}
		t.Logf("rule %v->%v support=%d conf=%.3f lift=%.2f", r.Anchor, r.Target, r.Support, r.Confidence, r.Lift)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined from the planted dataset")
	}
	precision := float64(hits) / float64(len(rules))
	recall := float64(hits) / float64(len(want))
	t.Logf("planted-pair recovery: %d rules, %d planted hits, precision %.2f recall %.2f", len(rules), hits, precision, recall)
	if precision < 0.8 || recall < 0.8 {
		t.Fatalf("planted pairs not recovered: precision %.2f recall %.2f (floor 0.8)", precision, recall)
	}
}

// TestCalibrationPlantedAnomalies pins the vicinity detector against
// ground-truth bad nodes: three group-1 systems whose node 0 carries an
// eightfold baseline hazard on every category (the simulator's login-node
// channel, with every other heterogeneity source switched off). All three
// planted nodes must land in the anomaly top-5.
func TestCalibrationPlantedAnomalies(t *testing.T) {
	p := simulate.DefaultParams()
	p.Group1.BaseDaily = 0.02
	for c := range p.NodeZeroMult {
		p.NodeZeroMult[c] = 8
	}
	p.LemonFraction = 0
	p.FrailtySigma = 0
	p.CosmicBeta = 0

	ds, err := simulate.Generate(simulate.Options{
		Seed:          17,
		Systems:       []simulate.SystemConfig{plantedSystem(1), plantedSystem(2), plantedSystem(3)},
		Params:        &p,
		DisableEvents: true, DisableTriggering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := correlate.DetectAnomalies(analysis.New(ds), nil, 5)
	found := map[int]bool{}
	for _, a := range top {
		t.Logf("anomaly system=%d node=%d score=%.2f (rate %.2f mix %.2f burst %.2f, %d events)",
			a.System, a.Node, a.Score, a.RateDev, a.MixDev, a.BurstDev, a.Events)
		if a.Node == 0 {
			found[a.System] = true
		}
	}
	for _, id := range []int{1, 2, 3} {
		if !found[id] {
			t.Fatalf("planted bad node 0 of system %d missing from anomaly top-5", id)
		}
	}
}
