package correlate

import (
	"sort"
	"time"

	"github.com/hpcfail/hpcfail/internal/trace"
)

// MineNaive is the frozen reference miner: a direct, index-free transcript
// of the pair-counting semantics. For every (valid-category) event — the
// anchor — it scans forward over the system's timeline and marks, per
// scope and target category, whether at least one strictly-later event
// lands within (t, t+w]: on the anchor's node (node scope), on a different
// placed node of the anchor's rack (rack scope), or on any other node of
// the system (system scope). Events at the anchor's own instant never
// satisfy it, and invalid categories are skipped both as anchors and as
// targets. Every system of the dataset appears in the result, ascending by
// ID, even with zero events.
//
// The incremental Miner must stay bit-identical to this function; change
// neither without the differential tests.
func MineNaive(ds *trace.Dataset, w time.Duration) RuleCounts {
	out := RuleCounts{Window: w}
	bySys := make(map[int][]trace.Failure)
	for _, f := range ds.Failures {
		bySys[f.System] = append(bySys[f.System], f)
	}
	ids := make([]int, 0, len(ds.Systems))
	for _, s := range ds.Systems {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fails := bySys[id]
		sort.SliceStable(fails, func(i, j int) bool { return fails[i].Time.Before(fails[j].Time) })
		sc := SystemCounts{System: id}
		lay := ds.Layouts[id]
		for i, anchor := range fails {
			a := catIndex(anchor.Category)
			if a < 0 {
				continue
			}
			sc.Total++
			sc.Anchors[a]++
			rack := -1
			if lay != nil {
				if p, ok := lay.Place(anchor.Node); ok {
					rack = p.Rack
				}
			}
			deadline := anchor.Time.Add(w)
			var sat [numScopes][NumCategories]bool
			for j := i + 1; j < len(fails); j++ {
				tgt := fails[j]
				if tgt.Time.After(deadline) {
					break
				}
				if !tgt.Time.After(anchor.Time) {
					continue
				}
				b := catIndex(tgt.Category)
				if b < 0 {
					continue
				}
				if tgt.Node == anchor.Node {
					sat[0][b] = true
					continue
				}
				sat[2][b] = true
				if rack >= 0 {
					if p, ok := lay.Place(tgt.Node); ok && p.Rack == rack {
						sat[1][b] = true
					}
				}
			}
			for s := range sat {
				for b, hit := range sat[s] {
					if hit {
						sc.Pairs[s][a][b]++
					}
				}
			}
		}
		out.Systems = append(out.Systems, sc)
	}
	return out
}
