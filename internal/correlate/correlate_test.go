package correlate_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/correlate"
	"github.com/hpcfail/hpcfail/internal/simulate"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

func genDataset(t *testing.T, seed int64) *trace.Dataset {
	t.Helper()
	ds, err := simulate.Generate(simulate.Options{Seed: seed, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// batchAfter builds n valid events starting after the newest failure,
// cycling systems, nodes and categories so every scope gets traffic.
func batchAfter(ds *trace.Dataset, n int, step time.Duration) []trace.Failure {
	start := ds.Systems[0].Period.End
	for _, s := range ds.Systems {
		if s.Period.End.After(start) {
			start = s.Period.End
		}
	}
	if len(ds.Failures) > 0 {
		if last := ds.Failures[len(ds.Failures)-1].Time; last.After(start) {
			start = last
		}
	}
	cats := []trace.Failure{
		{Category: trace.Hardware, HW: trace.Memory},
		{Category: trace.Software, SW: trace.OS},
		{Category: trace.Network},
		{Category: trace.Environment},
		{Category: trace.Hardware, HW: trace.CPU},
		{Category: trace.Undetermined},
	}
	out := make([]trace.Failure, 0, n)
	for i := 0; i < n; i++ {
		s := ds.Systems[i%len(ds.Systems)]
		f := cats[i%len(cats)]
		f.System = s.ID
		f.Node = (i * 7) % s.Nodes
		f.Time = start.Add(time.Duration(i+1) * step)
		out = append(out, f)
	}
	return out
}

// batchInside builds n late arrivals in the middle of the period, forcing
// the store's merge-and-rebuild path (and the miner's full re-mine).
func batchInside(ds *trace.Dataset, n int) []trace.Failure {
	out := make([]trace.Failure, 0, n)
	for i := 0; i < n; i++ {
		s := ds.Systems[i%len(ds.Systems)]
		mid := s.Period.Start.Add(s.Period.Duration() / 2)
		cat := trace.Categories[i%len(trace.Categories)]
		out = append(out, trace.Failure{
			System:   s.ID,
			Node:     (i * 3) % s.Nodes,
			Time:     mid.Add(time.Duration(i) * time.Hour),
			Category: cat,
		})
	}
	return out
}

func requireSameCounts(t *testing.T, label string, got, want correlate.RuleCounts) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	if len(got.Systems) != len(want.Systems) {
		t.Fatalf("%s: %d systems vs %d", label, len(got.Systems), len(want.Systems))
	}
	for i := range got.Systems {
		if !reflect.DeepEqual(got.Systems[i], want.Systems[i]) {
			t.Fatalf("%s: system %d counts diverged:\nincremental %+v\nnaive       %+v",
				label, got.Systems[i].System, got.Systems[i], want.Systems[i])
		}
	}
	t.Fatalf("%s: counts diverged (window %v vs %v)", label, got.Window, want.Window)
}

// TestMinerMatchesNaive is the tentpole's differential pin: after every
// append in an arbitrary sequence — tails, late arrivals (rebuild path),
// tails again, a single event — the incrementally maintained counts are
// identical (pure integers, so DeepEqual is bit-identity) to the frozen
// naive miner run from scratch over the snapshot's dataset, for every
// configured window.
func TestMinerMatchesNaive(t *testing.T) {
	ds := genDataset(t, 33)
	st, err := store.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	m := correlate.NewMiner(st, trace.Day, trace.Week)
	steps := []struct {
		name  string
		batch func(cur *trace.Dataset) []trace.Failure
	}{
		{"seed", func(*trace.Dataset) []trace.Failure { return nil }},
		{"tail-batch", func(cur *trace.Dataset) []trace.Failure { return batchAfter(cur, 60, time.Minute) }},
		{"tail-dense", func(cur *trace.Dataset) []trace.Failure { return batchAfter(cur, 23, time.Second) }},
		{"late-arrivals", func(cur *trace.Dataset) []trace.Failure { return batchInside(cur, 11) }},
		{"tail-after-late", func(cur *trace.Dataset) []trace.Failure { return batchAfter(cur, 31, time.Hour) }},
		{"single-event", func(cur *trace.Dataset) []trace.Failure { return batchAfter(cur, 1, time.Minute) }},
	}
	for _, step := range steps {
		if _, err := st.Append(step.batch(st.Snapshot().Dataset())); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		for _, w := range []time.Duration{trace.Day, trace.Week} {
			got, snap, ok := m.Mine(w)
			if !ok {
				t.Fatalf("%s: window %v not configured", step.name, w)
			}
			want := correlate.MineNaive(snap.Dataset(), w)
			requireSameCounts(t, step.name+"/"+trace.WindowName(w), got, want)
		}
	}
	// A fresh miner over the final store (one full catch-up mine) agrees too.
	fresh := correlate.NewMiner(st, trace.Day)
	got, snap, _ := fresh.Mine(trace.Day)
	requireSameCounts(t, "fresh-full-mine", got, correlate.MineNaive(snap.Dataset(), trace.Day))
}

// TestMineReflectsAppendImmediately pins the endpoint-visible liveness
// contract: an appended event is in the very next Mine answer.
func TestMineReflectsAppendImmediately(t *testing.T) {
	ds := genDataset(t, 7)
	st, err := store.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	m := correlate.NewMiner(st)
	before, snapBefore, _ := m.Mine(trace.Day)
	if _, err := st.Append(batchAfter(st.Snapshot().Dataset(), 4, time.Minute)); err != nil {
		t.Fatal(err)
	}
	after, snapAfter, _ := m.Mine(trace.Day)
	if snapAfter.Version() != snapBefore.Version()+1 {
		t.Fatalf("snapshot version %d, want %d", snapAfter.Version(), snapBefore.Version()+1)
	}
	if after.Aggregate().Total != before.Aggregate().Total+4 {
		t.Fatalf("total after append = %d, want %d", after.Aggregate().Total, before.Aggregate().Total+4)
	}
}

// TestMineUnknownWindow pins that unconfigured windows are refused rather
// than silently mined as zero.
func TestMineUnknownWindow(t *testing.T) {
	ds := genDataset(t, 8)
	st, err := store.New(ds)
	if err != nil {
		t.Fatal(err)
	}
	m := correlate.NewMiner(st, trace.Day)
	if _, _, ok := m.Mine(trace.Month); ok {
		t.Fatal("Mine accepted an unconfigured window")
	}
	if _, _, ok := m.Mine(trace.Day); !ok {
		t.Fatal("Mine refused a configured window")
	}
}

// TestMergeRuleCountsMatchesWholeDataset pins the scatter-gather
// bit-identity: mining ring partitions separately and merging equals
// mining the whole dataset, for any shard count (n=1 is byte-compatible
// passthrough).
func TestMergeRuleCountsMatchesWholeDataset(t *testing.T) {
	ds := genDataset(t, 44)
	whole := correlate.MineNaive(ds, trace.Week)
	for _, shards := range []int{1, 2, 3, 5} {
		ring, err := store.NewRing(shards, 8)
		if err != nil {
			t.Fatal(err)
		}
		parts, _ := store.PartitionDataset(ds, ring)
		mined := make([]correlate.RuleCounts, 0, len(parts))
		for _, p := range parts {
			mined = append(mined, correlate.MineNaive(p, trace.Week))
		}
		merged := correlate.MergeRuleCounts(trace.Week, mined)
		if !reflect.DeepEqual(merged, whole) {
			t.Fatalf("%d shards: merged counts diverged from whole-dataset mine", shards)
		}
	}
	// Incremental miners per shard merge identically too.
	ring, _ := store.NewRing(3, 8)
	parts, _ := store.PartitionDataset(ds, ring)
	mined := make([]correlate.RuleCounts, 0, len(parts))
	for _, p := range parts {
		st, err := store.New(p)
		if err != nil {
			t.Fatal(err)
		}
		rc, _, _ := correlate.NewMiner(st, trace.Week).Mine(trace.Week)
		mined = append(mined, rc)
	}
	if got := correlate.MergeRuleCounts(trace.Week, mined); !reflect.DeepEqual(got, whole) {
		t.Fatal("merged incremental shard counts diverged from whole-dataset mine")
	}
}

// TestMergeRuleCountsEdgeCases pins passthrough and empty-input behavior.
func TestMergeRuleCountsEdgeCases(t *testing.T) {
	one := correlate.RuleCounts{Window: trace.Day, Systems: []correlate.SystemCounts{{System: 7}}}
	one.Systems[0].Total = 3
	if got := correlate.MergeRuleCounts(trace.Week, []correlate.RuleCounts{one}); !reflect.DeepEqual(got, one) {
		t.Fatalf("single-part merge not a passthrough: %+v", got)
	}
	if got := correlate.MergeRuleCounts(trace.Day, nil); got.Window != trace.Day || got.Systems != nil {
		t.Fatalf("empty merge = %+v, want empty day counts", got)
	}
	// Colliding systems sum.
	a := correlate.RuleCounts{Window: trace.Day, Systems: []correlate.SystemCounts{{System: 2}}}
	b := correlate.RuleCounts{Window: trace.Day, Systems: []correlate.SystemCounts{{System: 2}}}
	a.Systems[0].Total, b.Systems[0].Total = 5, 7
	got := correlate.MergeRuleCounts(trace.Day, []correlate.RuleCounts{a, b})
	if len(got.Systems) != 1 || got.Systems[0].Total != 12 {
		t.Fatalf("colliding merge = %+v, want one system with total 12", got)
	}
}

// TestRulesDerivation pins threshold and lift arithmetic on hand-built
// counts: 100 events, 40 hardware anchors of which 20 have a software
// follow-up on the node; 10 software anchors, 2 satisfied.
func TestRulesDerivation(t *testing.T) {
	var pc correlate.PairCounts
	hw := int(trace.Hardware) - 1
	sw := int(trace.Software) - 1
	pc.Total = 100
	pc.Anchors[hw] = 40
	pc.Anchors[sw] = 10
	pc.Pairs[0][hw][sw] = 20
	pc.Pairs[0][sw][sw] = 2 // support below the default floor of 10

	rules := pc.Rules(analysis.ScopeNode, 0, 0)
	if len(rules) != 1 {
		t.Fatalf("rules = %+v, want exactly the hw->sw rule", rules)
	}
	r := rules[0]
	if r.Anchor != trace.Hardware || r.Target != trace.Software || r.Scope != analysis.ScopeNode {
		t.Fatalf("rule identity = %+v", r)
	}
	if r.Support != 20 || r.Anchors != 40 || r.Confidence != 0.5 {
		t.Fatalf("rule stats = %+v", r)
	}
	// Unconditional sw satisfaction rate: (20+2)/100; lift = 0.5 / 0.22.
	if want := 0.5 / (22.0 / 100.0); r.Lift != want {
		t.Fatalf("lift = %v, want %v", r.Lift, want)
	}
	// Loosening the thresholds surfaces the below-floor rule.
	if rules := pc.Rules(analysis.ScopeNode, 1, 0.01); len(rules) != 2 {
		t.Fatalf("loose thresholds: %d rules, want 2", len(rules))
	}
	if rules := pc.Rules(analysis.Scope(99), 0, 0); rules != nil {
		t.Fatal("invalid scope returned rules")
	}
}

// TestAnomaliesDeterministic pins that the detector is a pure function of
// the dataset: same snapshot, same scores, same order, twice.
func TestAnomaliesDeterministic(t *testing.T) {
	ds := genDataset(t, 55)
	an := analysis.New(ds)
	a := correlate.DetectAnomalies(an, nil, 25)
	b := correlate.DetectAnomalies(an, nil, 25)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("anomaly detection is not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no anomalies scored")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Score > a[i-1].Score {
			t.Fatalf("scores not descending at %d: %v > %v", i, a[i].Score, a[i-1].Score)
		}
	}
	// System filtering restricts the universe.
	only := correlate.DetectAnomalies(an, []int{ds.Systems[0].ID}, 0)
	for _, x := range only {
		if x.System != ds.Systems[0].ID {
			t.Fatalf("filtered detection leaked system %d", x.System)
		}
	}
}
