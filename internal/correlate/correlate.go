// Package correlate mines windowed event-correlation rules and vicinity
// anomalies from the versioned dataset store.
//
// The rule miner counts, per system and per time window w, ordered
// category pairs A→B at three spatial scopes: an anchor event of category A
// is a "satisfied" anchor for (A, B, scope) when at least one category-B
// event follows it within (t, t+w] on the same node (node scope), on a
// different node of the anchor's rack (rack scope), or on any other node of
// the system (system scope) — the LogMaster-style support/confidence rule
// mining of PAPERS.md adapted to the trace schema. All state is integer
// counts (PairCounts), so per-shard results merge bit-identically into the
// whole-fleet answer (MergeRuleCounts, in the mold of
// analysis.MergeCondResults), and support/confidence/lift derive from the
// merged integers afterwards.
//
// The Miner maintains those counts incrementally per store Append by
// reusing the analysis posting-list index: a new event flips exactly the
// anchors whose window it is the first matching follow-up for, found by
// binary search — no rescan of the log. MineNaive is the frozen reference
// implementation the differential tests pin the incremental path against,
// bit for bit.
//
// The vicinity anomaly detector (DetectAnomalies) scores each node's
// failure behavior — rate, category mix, burstiness — against its physical
// vicinity (rack-mates plus position peers from internal/layout), flagging
// nodes whose behavior deviates robustly from their neighbors'.
package correlate

import (
	"sort"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// NumCategories is the rule-class space: the six root-cause categories of
// the trace schema, indexed by catIndex (trace.Category - 1).
const NumCategories = 6

// numScopes indexes Pairs by analysis.Scope - 1: node, rack, system.
const numScopes = 3

// Default rule thresholds: a rule needs at least DefaultMinSupport
// satisfied anchors and at least DefaultMinConfidence of its anchors
// satisfied. The calibration tests pin that planted simulator triggering
// pairs are recovered at exactly these defaults.
const (
	DefaultMinSupport    = 10
	DefaultMinConfidence = 0.05
)

// catIndex maps a category to its dense index, or -1 for invalid
// categories (which the miners skip entirely, as anchors and as targets).
func catIndex(c trace.Category) int {
	if c < trace.Environment || c > trace.Undetermined {
		return -1
	}
	return int(c) - 1
}

// scopeIndex maps an analysis scope to its Pairs index, or -1.
func scopeIndex(s analysis.Scope) int {
	switch s {
	case analysis.ScopeNode, analysis.ScopeRack, analysis.ScopeSystem:
		return int(s) - 1
	}
	return -1
}

// PairCounts is the integer counting state of one system for one window:
// how many events of each category occurred (the anchors), and per scope
// how many of them were satisfied by a follow-up of each category. Every
// derived statistic (support, confidence, lift) is a pure function of these
// integers, which is what makes sharded mining merge exactly.
type PairCounts struct {
	// Total is the number of (valid-category) events.
	Total int64 `json:"total"`
	// Anchors counts events per category.
	Anchors [NumCategories]int64 `json:"anchors"`
	// Pairs[scope-1][a][b] counts category-a anchors with at least one
	// category-b follow-up within the window at that scope.
	Pairs [numScopes][NumCategories][NumCategories]int64 `json:"pairs"`
}

// add accumulates o into c.
func (c *PairCounts) add(o *PairCounts) {
	c.Total += o.Total
	for a := range c.Anchors {
		c.Anchors[a] += o.Anchors[a]
	}
	for s := range c.Pairs {
		for a := range c.Pairs[s] {
			for b := range c.Pairs[s][a] {
				c.Pairs[s][a][b] += o.Pairs[s][a][b]
			}
		}
	}
}

// SystemCounts is one system's PairCounts.
type SystemCounts struct {
	System int `json:"system"`
	PairCounts
}

// RuleCounts is the mergeable mining result: per-system integer counts for
// one window, ascending by system ID. It is what crosses shard boundaries.
type RuleCounts struct {
	Window  time.Duration  `json:"window"`
	Systems []SystemCounts `json:"systems"`
}

// MergeRuleCounts combines rule counts mined over disjoint system sets into
// the counts for their union. Systems are independent in the mining
// semantics (pairs never cross system boundaries), so the union of
// per-system integer counts — summing on the (defensive) collision — is
// bit-identical to mining the union dataset at once; the scatter-gather
// serving path relies on that exactly like condprob relies on
// analysis.MergeCondResults. With one part it passes through untouched, and
// with none it yields the empty result a zero-system mine would.
func MergeRuleCounts(w time.Duration, parts []RuleCounts) RuleCounts {
	if len(parts) == 1 {
		return parts[0]
	}
	out := RuleCounts{Window: w}
	n := 0
	for _, p := range parts {
		n += len(p.Systems)
	}
	all := make([]SystemCounts, 0, n)
	for _, p := range parts {
		all = append(all, p.Systems...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].System < all[j].System })
	for _, sc := range all {
		if k := len(out.Systems); k > 0 && out.Systems[k-1].System == sc.System {
			out.Systems[k-1].add(&sc.PairCounts)
			continue
		}
		out.Systems = append(out.Systems, sc)
	}
	return out
}

// Aggregate sums the per-system counts into one PairCounts.
func (rc RuleCounts) Aggregate() PairCounts {
	var out PairCounts
	for i := range rc.Systems {
		out.add(&rc.Systems[i].PairCounts)
	}
	return out
}

// Filter returns the counts restricted to one system (0 keeps everything).
func (rc RuleCounts) Filter(system int) RuleCounts {
	if system == 0 {
		return rc
	}
	out := RuleCounts{Window: rc.Window}
	for _, sc := range rc.Systems {
		if sc.System == system {
			out.Systems = append(out.Systems, sc)
		}
	}
	return out
}

// Rule is one thresholded edge of the correlation-rule graph.
type Rule struct {
	// Anchor and Target are the rule's categories: Anchor failures are
	// followed by Target failures.
	Anchor trace.Category
	Target trace.Category
	// Scope is the spatial scope the follow-up was counted at.
	Scope analysis.Scope
	// Support is the number of satisfied anchors, Anchors the number of
	// anchor-category events, Confidence their ratio.
	Support    int64
	Anchors    int64
	Confidence float64
	// Lift is Confidence over the unconditional satisfaction rate of the
	// target category (any-anchor confidence): how much more likely a
	// Target follow-up is after an Anchor event than after a random event.
	Lift float64
}

// Rules derives the support/confidence-thresholded rule graph for one scope
// from aggregated counts, ordered by (anchor, target) category. minSupport
// and minConfidence at or below zero take the defaults.
func (c *PairCounts) Rules(scope analysis.Scope, minSupport int64, minConfidence float64) []Rule {
	si := scopeIndex(scope)
	if si < 0 {
		return nil
	}
	if minSupport <= 0 {
		minSupport = DefaultMinSupport
	}
	if minConfidence <= 0 {
		minConfidence = DefaultMinConfidence
	}
	var colSum [NumCategories]int64
	for a := 0; a < NumCategories; a++ {
		for b := 0; b < NumCategories; b++ {
			colSum[b] += c.Pairs[si][a][b]
		}
	}
	var out []Rule
	for a := 0; a < NumCategories; a++ {
		anchors := c.Anchors[a]
		if anchors == 0 {
			continue
		}
		for b := 0; b < NumCategories; b++ {
			support := c.Pairs[si][a][b]
			conf := float64(support) / float64(anchors)
			if support < minSupport || conf < minConfidence {
				continue
			}
			r := Rule{
				Anchor:     trace.Category(a + 1),
				Target:     trace.Category(b + 1),
				Scope:      scope,
				Support:    support,
				Anchors:    anchors,
				Confidence: conf,
			}
			// The any-anchor satisfaction rate of b: every anchor has
			// exactly one category, so the column sum over anchors is the
			// satisfied count among all Total events.
			if c.Total > 0 && colSum[b] > 0 {
				r.Lift = conf / (float64(colSum[b]) / float64(c.Total))
			}
			out = append(out, r)
		}
	}
	return out
}
