package correlate

import (
	"sort"
	"sync"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
)

// DefaultWindows are the correlation windows a Miner maintains when none
// are configured: the day and week windows the paper's conditional
// probabilities use.
func DefaultWindows() []time.Duration {
	return []time.Duration{trace.Day, trace.Week}
}

// Miner maintains the windowed pair counts of a store incrementally: each
// Mine call pins the store's current snapshot and catches the counts up by
// processing only the events appended since the previous call, using the
// snapshot analyzer's posting-list index to find, per new event, exactly
// the anchors whose window that event is the first matching follow-up for.
// The resulting counts are bit-identical to MineNaive over the snapshot's
// whole dataset — the differential tests pin that equality after arbitrary
// append sequences.
//
// A Miner is safe for concurrent use; Mine serializes internally.
type Miner struct {
	st      *store.Store
	windows []time.Duration

	mu       sync.Mutex
	version  uint64 // store version the counts reflect (0 = never synced)
	rebuilds uint64 // snapshot rebuild count at last sync
	seen     map[int]int
	counts   []map[int]*PairCounts // parallel to windows: system -> counts
}

// NewMiner builds a miner over st maintaining the given windows
// (DefaultWindows when none). Non-positive and duplicate windows are
// dropped. The miner does no work until the first Mine call.
func NewMiner(st *store.Store, windows ...time.Duration) *Miner {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	uniq := make([]time.Duration, 0, len(windows))
	for _, w := range windows {
		if w <= 0 {
			continue
		}
		dup := false
		for _, u := range uniq {
			if u == w {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, w)
		}
	}
	m := &Miner{st: st, windows: uniq}
	m.reset()
	return m
}

// Windows returns the windows the miner maintains.
func (m *Miner) Windows() []time.Duration {
	out := make([]time.Duration, len(m.windows))
	copy(out, m.windows)
	return out
}

// Version returns the store version the counts currently reflect.
func (m *Miner) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

func (m *Miner) reset() {
	m.seen = make(map[int]int)
	m.counts = make([]map[int]*PairCounts, len(m.windows))
	for i := range m.counts {
		m.counts[i] = make(map[int]*PairCounts)
	}
	m.version, m.rebuilds = 0, 0
}

// Mine returns the pair counts for window w over the requested systems
// (all known systems when none are given), computed against the store's
// current snapshot, plus the snapshot itself so callers can stamp the
// version they answered from. It first catches the miner up on any events
// appended since the last call — an appended event is therefore reflected
// in the very next Mine answer. The third result is false when w is not
// one of the miner's configured windows.
func (m *Miner) Mine(w time.Duration, systems ...int) (RuleCounts, *store.Snapshot, bool) {
	wi := -1
	for i, u := range m.windows {
		if u == w {
			wi = i
			break
		}
	}
	snap := m.st.Snapshot()
	if wi < 0 {
		return RuleCounts{Window: w}, snap, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncLocked(snap)
	return m.assembleLocked(wi, snap, systems), snap, true
}

// assembleLocked copies the counts for one window into a RuleCounts,
// ascending by system ID. Every known system of the snapshot appears, even
// with zero events, so sharded merges cover exactly the fleet's systems.
func (m *Miner) assembleLocked(wi int, snap *store.Snapshot, systems []int) RuleCounts {
	out := RuleCounts{Window: m.windows[wi]}
	var ids []int
	if len(systems) > 0 {
		ids = make([]int, len(systems))
		copy(ids, systems)
		sort.Ints(ids)
	} else {
		for _, s := range snap.Dataset().Systems {
			ids = append(ids, s.ID)
		}
		sort.Ints(ids)
	}
	byID := m.counts[wi]
	for i, id := range ids {
		if i > 0 && ids[i-1] == id {
			continue
		}
		if _, ok := snap.Dataset().System(id); !ok {
			continue
		}
		sc := SystemCounts{System: id}
		if pc := byID[id]; pc != nil {
			sc.PairCounts = *pc
		}
		out.Systems = append(out.Systems, sc)
	}
	return out
}

// syncLocked brings the counts up to snap. Equal rebuild counts mean the
// failure log only grew at the tail since the last sync (see
// store.Snapshot.Rebuilds), so only the per-system tails are processed;
// otherwise positions moved and the counts are rebuilt from scratch —
// which runs the exact same per-event code over the full timelines.
func (m *Miner) syncLocked(snap *store.Snapshot) {
	if m.version == snap.Version() && m.version != 0 {
		return
	}
	if m.version == 0 || snap.Rebuilds() != m.rebuilds {
		m.reset()
	}
	didx := snap.Analyzer().DatasetIndex()
	for _, sys := range snap.Dataset().Systems {
		v, ok := didx.SystemView(sys.ID)
		if !ok {
			continue
		}
		from := m.seen[sys.ID]
		n := v.Events()
		if from >= n {
			continue
		}
		for wi, w := range m.windows {
			pc := m.counts[wi][sys.ID]
			if pc == nil {
				pc = &PairCounts{}
				m.counts[wi][sys.ID] = pc
			}
			for p := from; p < n; p++ {
				processEvent(v, p, w, pc)
			}
		}
		m.seen[sys.ID] = n
	}
	m.version, m.rebuilds = snap.Version(), snap.Rebuilds()
}

// processEvent accounts one event — the one at timeline position p — into
// pc for window w: it becomes an anchor itself, and it flips exactly the
// earlier anchors whose (t, t+w] window it is the first same-scope
// follow-up of its category for. Those anchors are found by binary search:
//
//   - Node scope: the previous same-class event on the node, at time t1,
//     already satisfied every anchor before t1 (any anchor in [t-w, t1)
//     has t1 within its window because t1 <= t <= anchor+w), so only
//     anchors in [max(t-w, t1), t) flip.
//   - Rack and system scopes: "previous satisfying event" depends on the
//     anchor's node (the follow-up must be a *different* node), so the
//     scan keeps the latest prior same-class event and the latest on a
//     second distinct node; every anchor before the second-distinct time
//     is already satisfied regardless of its node, and anchors after it
//     check against whichever of the two is not their own node.
//
// Satisfaction is by time, strictly after the anchor — two events at the
// same instant never satisfy each other — which makes the counts
// independent of processing order among equal-time events and of how the
// timeline is split into appends.
func processEvent(v analysis.SystemView, p int, w time.Duration, pc *PairCounts) {
	f := v.Failure(p)
	b := catIndex(f.Category)
	if b < 0 {
		return
	}
	pc.Total++
	pc.Anchors[b]++

	t := v.Time(p)
	lo := t.Add(-w)
	cls := trace.CategoryClass(f.Category)

	// Node scope: anchors on the same node, unsatisfied by the previous
	// same-class event there.
	nodeLo := lo
	if q := prevPos(v.NodeClassList(f.Node, cls), p); q >= 0 {
		if t1 := v.Time(q); t1.After(nodeLo) {
			nodeLo = t1
		}
	}
	alist := v.NodeClassList(f.Node, trace.ClassAny)
	for i := v.LowerBound(alist, nodeLo); i < len(alist); i++ {
		q := int(alist[i])
		if !v.Time(q).Before(t) {
			break
		}
		if a := catIndex(v.Failure(q).Category); a >= 0 {
			pc.Pairs[0][a][b]++
		}
	}

	// Rack scope: anchors on other placed nodes of this node's rack.
	if rack, placed := v.Rack(f.Node); placed {
		flipOtherNode(v, p, t, lo, f.Node, b, &pc.Pairs[1],
			v.RackClassList(rack, cls), v.RackClassList(rack, trace.ClassAny))
	}

	// System scope: anchors on any other node of the system.
	flipOtherNode(v, p, t, lo, f.Node, b, &pc.Pairs[2],
		v.ClassList(cls), v.ClassList(trace.ClassAny))
}

// flipOtherNode flips the different-node anchors newly satisfied by the
// event at position p (time t, category index b, node) within [lo, t),
// where blist is the scope's posting list of the event's class and alist
// the scope's full posting list.
func flipOtherNode(v analysis.SystemView, p int, t, lo time.Time, node, b int, pairs *[NumCategories][NumCategories]int64, blist, alist []int32) {
	n1, t1, t2, has1, has2 := lastTwoDistinct(v, blist, p)
	if has2 && t2.After(lo) {
		lo = t2
	}
	for i := v.LowerBound(alist, lo); i < len(alist); i++ {
		q := int(alist[i])
		ta := v.Time(q)
		if !ta.Before(t) {
			break
		}
		af := v.Failure(q)
		if af.Node == node {
			continue
		}
		a := catIndex(af.Category)
		if a < 0 {
			continue
		}
		// The latest prior same-class event on a node other than the
		// anchor's; if it is strictly after the anchor, the anchor was
		// already satisfied (it is within the anchor's window because the
		// anchor is within [t-w, t) and the prior event is at most t).
		if has1 && n1 != af.Node {
			if t1.After(ta) {
				continue
			}
		} else if has2 && t2.After(ta) {
			continue
		}
		pairs[a][b]++
	}
}

// prevPos returns the largest posting-list position strictly before p, or
// -1. Posting lists ascend by position, so this is the latest event of the
// list's class already on the timeline when position p is processed.
func prevPos(list []int32, p int) int {
	i := sort.Search(len(list), func(k int) bool { return int(list[k]) >= p })
	if i == 0 {
		return -1
	}
	return int(list[i-1])
}

// lastTwoDistinct scans a posting list backward from position p for the
// latest prior entry (node n1, time t1) and the latest prior entry on a
// different node than n1 (time t2).
func lastTwoDistinct(v analysis.SystemView, list []int32, p int) (n1 int, t1, t2 time.Time, has1, has2 bool) {
	i := sort.Search(len(list), func(k int) bool { return int(list[k]) >= p })
	for i--; i >= 0; i-- {
		q := int(list[i])
		nd := v.Failure(q).Node
		if !has1 {
			n1, t1, has1 = nd, v.Time(q), true
			continue
		}
		if nd != n1 {
			t2, has2 = v.Time(q), true
			break
		}
	}
	return
}
