#!/bin/sh
# Tier-1 verification: everything a change must pass before it lands.
# Referenced from ROADMAP.md.
set -eux

go vet ./...
go build ./...
go test -race ./...

# Fuzz smoke: the ingestion decoders must survive arbitrary bytes. Short
# runs here; CI or a release gate should use -fuzztime=30s or more.
go test -fuzz=FuzzLoadFailuresCSV -fuzztime=5s -run='^$' ./internal/trace/
go test -fuzz=FuzzImportLANL -fuzztime=5s -run='^$' ./internal/lanl/
