#!/bin/sh
# Tier-1 verification: everything a change must pass before it lands.
# Referenced from ROADMAP.md. CI (.github/workflows/ci.yml) runs the same
# gates as separate jobs, sharing the scripts/ helpers so the two can never
# drift, plus this script itself as one job.
set -eux

dir=$(dirname "$0")

# Formatting gate: gofmt-clean or fail, listing offenders.
"$dir/scripts/fmt.sh"

go vet ./...
go build ./...
go test -race ./...

# Bench smoke: every benchmark must still compile and run one iteration.
go test -bench=. -benchtime=1x -run='^$' ./...

# Fuzz smoke: targets listed in scripts/fuzz_targets.txt, 5s each by
# default (FUZZTIME overrides).
"$dir/scripts/fuzzsmoke.sh"

# Chaos gate: crash-recovery and overload tests under -race (kill-and-
# recover, shedding, breaker, shutdown-under-chaos). CHAOS_COUNT overrides
# the rerun count.
"$dir/scripts/chaos.sh"

# Crash-consistency gate: crash-point enumeration over the WAL + snapshot
# pipeline (tears, bit flips, fsyncgate, ENOSPC) plus the read-only-
# degradation tests, under -race. CRASHGATE_DEEP=1 widens the sweep.
"$dir/scripts/crashgate.sh"

# Bench regression gate: kernel ns/op vs the committed BENCH_results.json
# (TOLERANCE overrides), and indexed kernels must keep MIN_SPEEDUP over the
# naive reference.
"$dir/scripts/benchgate.sh"

# Replay SLO gate: open-loop quick-catalog replay against a live in-process
# hpcserve, CO-corrected p99 and error rates vs the committed
# REPLAY_baseline.json (REPLAY_TOLERANCE / REPLAY_P99_SLACK /
# REPLAY_MIN_ACCEL override).
"$dir/scripts/replaygate.sh"
