#!/bin/sh
# Tier-1 verification: everything a change must pass before it lands.
# Referenced from ROADMAP.md.
set -eux

go vet ./...
go build ./...
go test -race ./...

# Bench smoke: every benchmark must still compile and run one iteration.
go test -bench=. -benchtime=1x -run='^$' ./...

# Fuzz smoke: the ingestion decoders must survive arbitrary bytes, and the
# server's query parser must survive arbitrary query strings. Short runs
# here; CI or a release gate should use -fuzztime=30s or more.
go test -fuzz=FuzzLoadFailuresCSV -fuzztime=5s -run='^$' ./internal/trace/
go test -fuzz=FuzzImportLANL -fuzztime=5s -run='^$' ./internal/lanl/
go test -fuzz=FuzzRiskQueryParams -fuzztime=5s -run='^$' ./internal/server/
