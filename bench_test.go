package hpcfail_test

// The benchmark harness regenerates every table and figure of the paper
// (one benchmark per experiment ID; see DESIGN.md's experiment index) over
// a shared synthetic dataset, plus ablation benchmarks for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each Benchmark<ID> measures the cost of regenerating that experiment;
// the first iteration also prints the paper-vs-measured metric lines, so
// `go test -bench . -v` doubles as a reproduction report.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hpcfail/hpcfail"
)

// benchScale keeps dataset generation around a second while leaving enough
// events for every experiment to be populated.
const benchScale = 0.5

var (
	benchOnce  sync.Once
	benchSuite *hpcfail.ExperimentSuite
	benchErr   error
)

func suite(b *testing.B) *hpcfail.ExperimentSuite {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 1, Scale: benchScale})
		if err != nil {
			benchErr = err
			return
		}
		benchSuite = hpcfail.NewExperimentSuite(ds)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// benchExperiment runs one experiment per iteration and prints its metrics
// once in verbose mode.
func benchExperiment(b *testing.B, id string) {
	s := suite(b)
	printed := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if !printed && testing.Verbose() {
			printed = true
			b.Logf("\n%s", res.Render())
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md experiment index).

func BenchmarkSec3A1(b *testing.B)    { benchExperiment(b, "s3a1") }
func BenchmarkFig1a(b *testing.B)     { benchExperiment(b, "fig1a") }
func BenchmarkFig1b(b *testing.B)     { benchExperiment(b, "fig1b") }
func BenchmarkSec3A4(b *testing.B)    { benchExperiment(b, "s3a4") }
func BenchmarkSec3B(b *testing.B)     { benchExperiment(b, "s3b") }
func BenchmarkFig2a(b *testing.B)     { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)     { benchExperiment(b, "fig2b") }
func BenchmarkSec3C(b *testing.B)     { benchExperiment(b, "s3c") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkSec7Intro(b *testing.B) { benchExperiment(b, "s7") }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkSec7A2(b *testing.B)    { benchExperiment(b, "s7a2") }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkSec8A(b *testing.B)     { benchExperiment(b, "s8a") }
func BenchmarkFig13(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkTableI(b *testing.B)    { benchExperiment(b, "tableI") }
func BenchmarkTableII(b *testing.B)   { benchExperiment(b, "tableII") }
func BenchmarkTableIII(b *testing.B)  { benchExperiment(b, "tableIII") }

// In-text analyses and extensions.

func BenchmarkSec3A3(b *testing.B)       { benchExperiment(b, "s3a3") }
func BenchmarkSec4C(b *testing.B)        { benchExperiment(b, "s4c") }
func BenchmarkInterArrival(b *testing.B) { benchExperiment(b, "ext-ia") }
func BenchmarkDowntime(b *testing.B)     { benchExperiment(b, "ext-downtime") }
func BenchmarkPrediction(b *testing.B)   { benchExperiment(b, "ext-predict") }
func BenchmarkOverview(b *testing.B)     { benchExperiment(b, "ext-overview") }
func BenchmarkLatency(b *testing.B)      { benchExperiment(b, "ext-latency") }

// BenchmarkGenerate measures the substrate itself: producing the full
// synthetic dataset.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: int64(i + 1), Scale: 0.25})
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Failures) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// ---- Ablations (DESIGN.md section 6) --------------------------------

// BenchmarkAblationNoTriggering shows the self-exciting generator is what
// creates most of the paper's correlations: with triggering, events and the
// login-node effect disabled, the weekly conditional-over-baseline factor
// drops from ~14X to the heterogeneity floor (~5X) produced by per-node
// frailty alone — the "unlucky node" statistical effect the paper discusses
// in Section IV.C.
func BenchmarkAblationNoTriggering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := hpcfail.Generate(hpcfail.GenerateOptions{
			Seed: 2, Scale: 0.25,
			DisableTriggering: true, DisableEvents: true, DisableNodeZero: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		a := hpcfail.NewAnalyzer(ds)
		r := a.CondProb(ds.GroupSystems(hpcfail.Group1), nil, nil, hpcfail.Week, hpcfail.ScopeNode)
		b.ReportMetric(r.Factor(), "weekly-factor")
	}
}

// BenchmarkAblationBaselineEstimator compares the tiled-window baseline
// estimator against a per-node exposure (Poisson) approximation — the
// design choice behind every "random week" number.
func BenchmarkAblationBaselineEstimator(b *testing.B) {
	s := suite(b)
	ds := s.A.DS
	g1 := ds.GroupSystems(hpcfail.Group1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tiled := s.A.BaselineNodeProb(g1, hpcfail.Week, nil)
		b.ReportMetric(tiled.P(), "tiled-baseline")
	}
}

// BenchmarkAblationOverdispersion quantifies why the paper fits a negative
// binomial next to the Poisson: on the per-node failure counts the NB's
// AIC should be materially lower (the counts are overdispersed).
func BenchmarkAblationOverdispersion(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr, err := s.A.JointRegression(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(jr.Poisson.AIC()-jr.NegBinom.AIC(), "aic-gain-nb")
	}
}

// BenchmarkAblationIndexScan compares the index-backed window query used
// throughout the analyses against a naive full scan of a node's failures.
func BenchmarkAblationIndexScan(b *testing.B) {
	s := suite(b)
	ds := s.A.DS
	sys := ds.Systems[len(ds.Systems)-1]
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for n := 0; n < sys.Nodes; n += 7 {
				iv := hpcfail.Interval{Start: sys.Period.Start, End: sys.Period.Start.Add(hpcfail.Month)}
				if s.A.Index.NodeAny(sys.ID, n, iv, nil) {
					total++
				}
			}
			_ = total
		}
	})
	b.Run("naive", func(b *testing.B) {
		failures := ds.SystemFailures(sys.ID)
		for i := 0; i < b.N; i++ {
			total := 0
			for n := 0; n < sys.Nodes; n += 7 {
				iv := hpcfail.Interval{Start: sys.Period.Start, End: sys.Period.Start.Add(hpcfail.Month)}
				for _, f := range failures {
					if f.Node == n && iv.Contains(f.Time) {
						total++
						break
					}
				}
			}
			_ = total
		}
	})
}

// BenchmarkReportAll measures the full reproduction sweep.
func BenchmarkReportAll(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.RunAll()
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
		if i == 0 && testing.Verbose() {
			b.Logf("ran %d experiments", len(results))
		}
	}
}

// Example of using the report output programmatically.
func ExampleExperimentSuite() {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 1, Scale: 0.1})
	if err != nil {
		fmt.Println(err)
		return
	}
	s := hpcfail.NewExperimentSuite(ds)
	res, err := s.Run("s3a1")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.ID, res.Err == nil)
	// Output: s3a1 true
}
