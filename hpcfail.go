// Package hpcfail is a toolkit for understanding how HPC systems fail from
// their operational logs. It reproduces the analyses of "Reading between
// the lines of failure logs: Understanding how HPC systems fail" (El-Sayed
// and Schroeder, DSN 2013) as a reusable Go library:
//
//   - a data model and CSV codecs for LANL-style operational logs (node
//     outages with a root-cause taxonomy, job logs, temperature samples,
//     maintenance events, neutron-monitor series);
//   - a conditional-probability analysis engine that answers "how much more
//     likely is a failure in the day/week/month after event X?" at node,
//     rack and system granularity, with confidence intervals and
//     significance tests;
//   - a statistics substrate (proportion CIs, two-sample z-tests,
//     chi-square tests, Pearson/Spearman correlation) and count-data GLMs
//     (Poisson and negative-binomial regression via IRLS, likelihood-ratio
//     ANOVA);
//   - a calibrated synthetic trace generator standing in for the LANL field
//     data, whose ground truth encodes the paper's reported effects;
//   - experiment runners that regenerate every table and figure of the
//     paper and render them as text;
//   - an online serving layer: a deterministic sliding-window risk engine
//     that turns the conditional-probability findings into live per-node
//     follow-up-failure scores, and an HTTP JSON API over it (see
//     cmd/hpcserve);
//   - a streaming correlation layer: an incremental miner for windowed
//     class-to-class correlation rules over the versioned store, and a
//     vicinity anomaly detector flagging nodes that fail unlike their
//     rack/position neighborhood (served as /v1/correlations and
//     /v1/anomalies).
//
// # Quick start
//
//	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 1, Scale: 0.25})
//	if err != nil { ... }
//	a := hpcfail.NewAnalyzer(ds)
//	week := a.CondProb(ds.GroupSystems(hpcfail.Group1), nil, nil, hpcfail.Week, hpcfail.ScopeNode)
//	fmt.Printf("P(failure within a week | failure) = %.1f%% (baseline %.1f%%)\n",
//		100*week.Conditional.P(), 100*week.Baseline.P())
//
// Datasets can also be loaded from CSV directories written by SaveDataset
// (see cmd/hpcgen), so the same analyses run on real logs converted into
// the schema.
package hpcfail

import (
	"context"
	"io"
	"time"

	"github.com/hpcfail/hpcfail/internal/analysis"
	"github.com/hpcfail/hpcfail/internal/checkpoint"
	"github.com/hpcfail/hpcfail/internal/client"
	"github.com/hpcfail/hpcfail/internal/correlate"
	"github.com/hpcfail/hpcfail/internal/experiments"
	"github.com/hpcfail/hpcfail/internal/faultinject"
	"github.com/hpcfail/hpcfail/internal/lanl"
	"github.com/hpcfail/hpcfail/internal/replay"
	"github.com/hpcfail/hpcfail/internal/risk"
	"github.com/hpcfail/hpcfail/internal/server"
	"github.com/hpcfail/hpcfail/internal/simulate"
	"github.com/hpcfail/hpcfail/internal/store"
	"github.com/hpcfail/hpcfail/internal/trace"
	"github.com/hpcfail/hpcfail/internal/validate"
	"github.com/hpcfail/hpcfail/internal/wal"
)

// Core data model re-exports.
type (
	// Dataset bundles every log type for a collection of systems.
	Dataset = trace.Dataset
	// SystemInfo describes one system covered by a dataset.
	SystemInfo = trace.SystemInfo
	// Failure is a single node-outage record.
	Failure = trace.Failure
	// Job is a single job record from a usage log.
	Job = trace.Job
	// TempSample is one periodic temperature reading.
	TempSample = trace.TempSample
	// MaintenanceEvent records a maintenance action on a node.
	MaintenanceEvent = trace.MaintenanceEvent
	// NeutronSample is one neutron-monitor reading.
	NeutronSample = trace.NeutronSample
	// Interval is a right-open time interval.
	Interval = trace.Interval
	// Category is the high-level root cause of an outage.
	Category = trace.Category
	// HWComponent is the component behind a hardware failure.
	HWComponent = trace.HWComponent
	// SWClass is the subsystem behind a software failure.
	SWClass = trace.SWClass
	// EnvClass is the facility subtype of an environment failure.
	EnvClass = trace.EnvClass
	// Group identifies a system's architecture group.
	Group = trace.Group
	// Pred is a failure predicate for analysis queries.
	Pred = trace.Pred
)

// Root-cause taxonomy re-exports.
const (
	Environment  = trace.Environment
	Hardware     = trace.Hardware
	Human        = trace.Human
	Network      = trace.Network
	Software     = trace.Software
	Undetermined = trace.Undetermined

	Group1 = trace.Group1
	Group2 = trace.Group2

	CPU         = trace.CPU
	Memory      = trace.Memory
	NodeBoard   = trace.NodeBoard
	PowerSupply = trace.PowerSupply
	Fan         = trace.Fan
	MSCBoard    = trace.MSCBoard
	Midplane    = trace.Midplane

	DST          = trace.DST
	OS           = trace.OS
	PFS          = trace.PFS
	CFS          = trace.CFS
	PatchInstall = trace.PatchInstall
	OtherSW      = trace.OtherSW

	PowerOutage = trace.PowerOutage
	PowerSpike  = trace.PowerSpike
	UPS         = trace.UPS
	Chillers    = trace.Chillers
	OtherEnv    = trace.OtherEnv
)

// Standard analysis windows.
const (
	Day   = trace.Day
	Week  = trace.Week
	Month = trace.Month
)

// Analysis engine re-exports.
type (
	// Analyzer runs the paper's analyses over one dataset.
	Analyzer = analysis.Analyzer
	// Scope selects node, rack or system granularity.
	Scope = analysis.Scope
	// CondResult is one conditional-vs-baseline comparison.
	CondResult = analysis.CondResult
	// FollowUp is a labelled CondResult.
	FollowUp = analysis.FollowUp
	// Predictor is the root-cause-aware follow-up-failure predictor.
	Predictor = analysis.Predictor
	// Evaluation summarizes a predictor's held-out performance.
	Evaluation = analysis.Evaluation
)

// Scopes.
const (
	ScopeNode   = analysis.ScopeNode
	ScopeRack   = analysis.ScopeRack
	ScopeSystem = analysis.ScopeSystem
)

// NewAnalyzer builds an analyzer over a sorted dataset.
func NewAnalyzer(ds *Dataset) *Analyzer { return analysis.New(ds) }

// Predicate helpers.
var (
	// CategoryPred matches failures of one category.
	CategoryPred = trace.CategoryPred
	// HWPred matches hardware failures of one component.
	HWPred = trace.HWPred
	// SWPred matches software failures of one class.
	SWPred = trace.SWPred
	// EnvPred matches environment failures of one subtype.
	EnvPred = trace.EnvPred
	// PredOf wraps an arbitrary filter function as a predicate; such
	// predicates bypass the class-partitioned index fast path.
	PredOf = trace.PredOf
)

// GenerateOptions configures synthetic dataset generation.
type GenerateOptions = simulate.Options

// Generate builds a synthetic LANL-style dataset. Scale in (0,1] shrinks
// the default ten-system catalog; seed makes generation deterministic.
func Generate(opts GenerateOptions) (*Dataset, error) { return simulate.Generate(opts) }

// SaveDataset writes a dataset as a directory of CSV files.
func SaveDataset(dir string, ds *Dataset) error { return trace.SaveDir(dir, ds) }

// LoadDataset reads a dataset directory written by SaveDataset.
func LoadDataset(dir string) (*Dataset, error) { return trace.LoadDir(dir) }

// Experiment re-exports: run the paper's tables and figures.
type (
	// ExperimentSuite runs the paper's experiments over one dataset.
	ExperimentSuite = experiments.Suite
	// ExperimentResult is one experiment's outcome.
	ExperimentResult = experiments.Result
)

// NewExperimentSuite builds an experiment suite over a dataset.
func NewExperimentSuite(ds *Dataset) *ExperimentSuite { return experiments.NewSuite(ds) }

// ExperimentIDs lists every reproducible table/figure ID in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// WindowName returns the paper's name for one of the standard windows.
func WindowName(w time.Duration) string { return trace.WindowName(w) }

// Checkpoint-policy re-exports: apply the correlation findings to
// checkpoint-interval selection (see internal/checkpoint).
type (
	// CheckpointPolicy chooses checkpoint spacing over time.
	CheckpointPolicy = checkpoint.Policy
	// FixedCheckpoint checkpoints at a constant interval.
	FixedCheckpoint = checkpoint.Fixed
	// RiskAwareCheckpoint tightens the interval after failures.
	RiskAwareCheckpoint = checkpoint.RiskAware
	// CheckpointResult aggregates a replay.
	CheckpointResult = checkpoint.Result
)

// YoungInterval returns Young's optimum checkpoint interval
// sqrt(2 * cost * MTBF).
func YoungInterval(cost, mtbf time.Duration) time.Duration {
	return checkpoint.YoungInterval(cost, mtbf)
}

// ReplayCheckpoints replays a checkpoint policy against one node's failure
// history.
func ReplayCheckpoints(period Interval, failures []time.Time, p CheckpointPolicy, cost time.Duration) (CheckpointResult, error) {
	return checkpoint.Replay(period, failures, p, cost)
}

// CompareCheckpointPolicies replays several policies over every node of the
// given systems.
func CompareCheckpointPolicies(systems []SystemInfo, failures func(system, node int) []time.Time, cost time.Duration, policies ...CheckpointPolicy) ([]CheckpointResult, error) {
	return checkpoint.Compare(systems, failures, cost, policies...)
}

// LANL-import re-exports: run the analyses on the real public release.
type (
	// LANLMapping declares the column layout of a LANL-style failure
	// table; DefaultLANLMapping matches the public release's headers.
	LANLMapping = lanl.Mapping
	// LANLImportResult bundles imported failures with per-row issues.
	LANLImportResult = lanl.Result
)

// DefaultLANLMapping returns the column mapping of the public LANL
// failure-data release.
func DefaultLANLMapping() LANLMapping { return lanl.DefaultMapping() }

// ImportLANL parses a LANL-style failure CSV into a ready-to-analyze
// dataset, deriving system descriptors from the records. The returned
// result lists rows that were skipped.
func ImportLANL(r io.Reader, m LANLMapping) (*Dataset, *LANLImportResult, error) {
	return lanl.ImportDataset(r, m)
}

// Validation re-exports: ingest messy real logs under an explicit policy.
type (
	// ValidationPolicy governs how ingestion treats corrupt records.
	ValidationPolicy = validate.Policy
	// ValidationMode selects fail-fast, skip-and-report, or repair.
	ValidationMode = validate.Mode
	// ValidationReport aggregates the diagnostics of one load.
	ValidationReport = validate.Report
	// Diagnostic is one line-anchored validation finding.
	Diagnostic = validate.Diagnostic
)

// Validation modes.
const (
	// Strict aborts the load on the first corrupt record.
	Strict = validate.Strict
	// Lenient skips corrupt records, reporting each one.
	Lenient = validate.Lenient
	// Repair coerces near-miss records into canonical form where possible
	// and skips the rest.
	Repair = validate.Repair
)

// ErrBudgetExceeded is wrapped by load errors when a dataset's skip-rate
// exceeds the policy's error budget.
var ErrBudgetExceeded = validate.ErrBudgetExceeded

// DefaultValidationPolicy returns the Lenient policy with the standard
// plausibility bounds and no error budget.
func DefaultValidationPolicy() ValidationPolicy { return validate.DefaultPolicy() }

// ParseValidationMode parses "strict", "lenient" or "repair".
func ParseValidationMode(s string) (ValidationMode, error) { return validate.ParseMode(s) }

// LoadDatasetWith reads a dataset directory under a validation policy,
// returning the dataset together with the validation report. The dataset
// and report are returned even when only the policy's error budget fails,
// so callers can inspect what loaded.
func LoadDatasetWith(dir string, p ValidationPolicy) (*Dataset, *ValidationReport, error) {
	return trace.LoadDirWith(dir, p)
}

// ValidateDataset applies the validation/repair engine to an in-memory
// dataset: cross-record failure checks (duplicates, overlapping outages,
// dangling references) plus reference checks for the auxiliary tables. It
// returns a sanitized copy, leaving the input unmodified.
func ValidateDataset(ds *Dataset, p ValidationPolicy) (*Dataset, *ValidationReport, error) {
	return trace.SanitizeDataset(ds, p)
}

// ImportLANLWith imports a LANL-style failure CSV under a validation
// policy, classifying skipped rows, applying plausibility checks and
// repairs, sanitizing cross-record problems, and enforcing the policy's
// error budget.
func ImportLANLWith(r io.Reader, m LANLMapping, p ValidationPolicy) (*Dataset, *ValidationReport, error) {
	return lanl.ImportDatasetWith(r, m, p)
}

// Fault-injection re-exports: deterministic corruption for robustness
// testing of ingestion pipelines.
type (
	// FaultSpec configures a corruption pass.
	FaultSpec = faultinject.Spec
	// FaultClass enumerates the injectable fault classes.
	FaultClass = faultinject.Class
	// FaultInjection is the ground truth of one injected fault.
	FaultInjection = faultinject.Injection
)

// Serving-layer re-exports: online risk scoring and the HTTP API (see
// internal/risk and internal/server).
type (
	// LiftTable is the precomputed conditional-probability table the risk
	// engine scores against.
	LiftTable = analysis.LiftTable
	// LiftKey identifies one lift-table entry (anchor class and scope).
	LiftKey = analysis.LiftKey
	// LiftEntry is one lift-table entry.
	LiftEntry = analysis.LiftEntry
	// RiskEngine scores live follow-up-failure risk per node.
	RiskEngine = risk.Engine
	// RiskConfig assembles a RiskEngine from a lift table and catalog.
	RiskConfig = risk.Config
	// RiskScore is one node's risk at one instant.
	RiskScore = risk.Score
	// RiskContribution is one active event's effect on a score.
	RiskContribution = risk.Contribution
	// RiskSnapshot is a consistent view of an engine's state.
	RiskSnapshot = risk.Snapshot
	// ServerConfig assembles the HTTP serving layer.
	ServerConfig = server.Config
	// RiskServer answers the JSON API over one dataset.
	RiskServer = server.Server
)

// BuildLiftTable precomputes the conditional-probability lift table for
// the given systems of a dataset at the given look-ahead window.
func BuildLiftTable(ds *Dataset, systems []SystemInfo, window time.Duration) (*LiftTable, error) {
	return analysis.New(ds).BuildLiftTable(systems, window)
}

// TrainLiftTable precomputes a lift table from only the first split
// fraction of each system's history, so the online scoring path can be
// evaluated on the held-out remainder (see examples/prediction).
func TrainLiftTable(ds *Dataset, systems []SystemInfo, window time.Duration, split float64) (*LiftTable, error) {
	return analysis.New(ds).TrainLiftTable(systems, window, split)
}

// NewRiskEngine builds an online risk engine over a dataset: the lift
// table is precomputed from the dataset's history, then live events fed to
// Observe move per-node scores.
func NewRiskEngine(ds *Dataset, window time.Duration) (*RiskEngine, error) {
	return risk.FromDataset(ds, window)
}

// NewRiskEngineWith builds a risk engine from an explicit configuration —
// a pre-built (or trained) lift table, catalog, and layouts.
func NewRiskEngineWith(cfg RiskConfig) (*RiskEngine, error) { return risk.New(cfg) }

// NewRiskServer builds the HTTP serving layer without listening; use its
// Handler with any http.Server or test harness.
func NewRiskServer(cfg ServerConfig) (*RiskServer, error) { return server.New(cfg) }

// Serve runs the HTTP API on addr until ctx is cancelled, then drains
// in-flight requests and returns nil. It is the body of cmd/hpcserve.
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	return server.Serve(ctx, addr, cfg)
}

// Durability re-exports: crash-safe serving via a write-ahead log plus
// periodic snapshots (see internal/wal and internal/risk).
type (
	// WALOptions configures the write-ahead log backing a Journal.
	WALOptions = wal.Options
	// WALSyncPolicy selects when WAL appends reach stable storage.
	WALSyncPolicy = wal.SyncPolicy
	// JournalConfig assembles a Journal around a RiskEngine.
	JournalConfig = risk.JournalConfig
	// Journal is the durable ingest path: WAL-first observation with
	// periodic engine snapshots; pass it to ServerConfig.Journal.
	Journal = risk.Journal
	// RecoveryStats reports what OpenJournal reconstructed on startup.
	RecoveryStats = risk.RecoveryStats
)

// WAL fsync policies, in decreasing durability order.
const (
	WALSyncAlways   = wal.SyncAlways
	WALSyncInterval = wal.SyncInterval
	WALSyncNever    = wal.SyncNever
)

// OpenJournal opens (or recovers) a durable journal over the engine: the
// newest valid snapshot is restored, the WAL tail past it replayed, and
// subsequent Observe calls are logged before they mutate engine state.
func OpenJournal(cfg JournalConfig) (*Journal, RecoveryStats, error) {
	return risk.OpenJournal(cfg)
}

// Versioned-store re-exports: the copy-on-write dataset store that unifies
// batch and online analysis (see internal/store). Readers pin an immutable
// DatasetSnapshot (dataset + incrementally-maintained analyzer + monotonic
// version) while writers append event batches; ServerConfig.Store and
// JournalConfig.Store accept a shared DatasetStore so live ingest and WAL
// recovery advance the analysis dataset the server answers from.
type (
	// DatasetStore is the versioned, copy-on-write owner of a canonical
	// event log.
	DatasetStore = store.Store
	// DatasetSnapshot is one immutable version of a DatasetStore's world:
	// dataset, ready analyzer, and version number.
	DatasetSnapshot = store.Snapshot
)

// NewDatasetStore builds a versioned store over a sorted dataset; the
// boot dataset becomes version 1.
func NewDatasetStore(ds *Dataset) (*DatasetStore, error) { return store.New(ds) }

// Correlation-mining re-exports: the streaming rule miner and vicinity
// anomaly detector behind GET /v1/correlations and /v1/anomalies (see
// internal/correlate).
type (
	// CorrelationMiner maintains windowed event-pair counts incrementally
	// against a DatasetStore and assembles correlation rules on demand.
	CorrelationMiner = correlate.Miner
	// CorrelationRule is one thresholded class-to-class rule with support,
	// confidence and lift.
	CorrelationRule = correlate.Rule
	// CorrelationRuleCounts is the mergeable pair-count state rules are
	// derived from; shards exchange these.
	CorrelationRuleCounts = correlate.RuleCounts
	// VicinityAnomaly is one node whose failure behaviour deviates from its
	// rack/position neighborhood.
	VicinityAnomaly = correlate.Anomaly
)

// NewCorrelationMiner builds a miner over the store for the given windows
// (none = the day and week defaults).
func NewCorrelationMiner(st *DatasetStore, windows ...time.Duration) *CorrelationMiner {
	return correlate.NewMiner(st, windows...)
}

// MergeCorrelationCounts merges per-shard rule counts into the counts an
// unsharded mine over the union dataset would produce, bit for bit.
func MergeCorrelationCounts(w time.Duration, parts []CorrelationRuleCounts) CorrelationRuleCounts {
	return correlate.MergeRuleCounts(w, parts)
}

// DetectVicinityAnomalies ranks the top k nodes of the given systems (nil =
// all) by how far their failure rate, class mix and burstiness deviate from
// their layout neighborhood.
func DetectVicinityAnomalies(a *Analyzer, systems []int, k int) []VicinityAnomaly {
	return correlate.DetectAnomalies(a, systems, k)
}

// Client re-exports: the resilient API client (see internal/client).
type (
	// ClientConfig assembles a Client.
	ClientConfig = client.Config
	// Client calls the hpcserve API with jittered retries, Retry-After
	// handling, and automatic idempotency keys on event posts.
	Client = client.Client
	// ClientEvent is one failure event for Client.PostEvents.
	ClientEvent = client.Event
	// APIError is a non-2xx server response the client did not retry away.
	APIError = client.APIError
	// DatasetClient is a Client handle scoped to one named dataset on a
	// multi-tenant server (Client.Dataset).
	DatasetClient = client.DatasetClient
)

// NewClient builds a resilient hpcserve API client.
func NewClient(cfg ClientConfig) (*Client, error) { return client.New(cfg) }

// Chaos re-exports: deterministic HTTP fault injection (see
// internal/faultinject). Wire Middleware into ServerConfig.Middleware.
type (
	// ChaosSpec configures a Chaos injector.
	ChaosSpec = faultinject.ChaosSpec
	// Chaos injects seeded latency, errors, and aborts as middleware.
	Chaos = faultinject.Chaos
)

// NewChaos builds a deterministic HTTP fault injector.
func NewChaos(spec ChaosSpec) *Chaos { return faultinject.NewChaos(spec) }

// Corrupt serializes failures into the canonical CSV and injects the
// spec's fault mix, returning the corrupted bytes and per-fault ground
// truth.
func Corrupt(failures []Failure, spec FaultSpec) ([]byte, []FaultInjection, error) {
	return faultinject.CorruptFailures(failures, spec)
}

// CorruptDataset writes ds into dir and replaces its failures table with a
// corrupted copy, returning the injection ground truth.
func CorruptDataset(dir string, ds *Dataset, spec FaultSpec) ([]FaultInjection, error) {
	return faultinject.CorruptDataset(dir, ds, spec)
}

// Replay re-exports: the decade-scale trace replay harness (see
// internal/replay and cmd/hpcreplay).
type (
	// ReplaySchedule is a deterministic, lazily generated stream of mixed
	// HTTP operations derived from a dataset's post-split failures.
	ReplaySchedule = replay.Schedule
	// ReplayScheduleOptions configures NewReplaySchedule.
	ReplayScheduleOptions = replay.ScheduleOptions
	// ReplayMix weights the read routes of a replay workload.
	ReplayMix = replay.Mix
	// ReplayOp is one scheduled operation with its virtual send time.
	ReplayOp = replay.Op
	// ReplayReport is the hpcreplay output document with CO-corrected
	// per-route latency percentiles.
	ReplayReport = replay.Report
	// ReplayGateOptions tunes the replay SLO gate.
	ReplayGateOptions = replay.GateOptions
)

// NewReplaySchedule splits ds at the options' split point and prepares the
// lazy open-loop op stream.
func NewReplaySchedule(ds *Dataset, opts ReplayScheduleOptions) (*ReplaySchedule, error) {
	return replay.NewSchedule(ds, opts)
}

// GenerateReplayCatalog builds a named replay dataset (quick, small,
// standard, decade or mega) with an optional hazard multiplier.
func GenerateReplayCatalog(name string, seed int64, hazardMult float64) (*Dataset, error) {
	return replay.GenerateCatalog(name, seed, hazardMult)
}

// ReplayGate compares a replay report against a baseline and returns one
// violation string per breached SLO (empty = pass).
func ReplayGate(cur, base *ReplayReport, o ReplayGateOptions) []string {
	return replay.Gate(cur, base, o)
}
