// Multitenant: run one server hosting two named datasets, ingest live
// events into each, and diff their failure behavior with /v1/compare —
// the comparative reading the source paper argues failure logs need.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/hpcfail/hpcfail"
)

func main() {
	// The default tenant serves the dataset the process boots with, on
	// the exact same routes a single-dataset server has always had.
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 1, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	// TenantRoot is where named datasets keep their manifests and WAL
	// trees (<root>/<name>/shard-NNN/); AdminToken gates the management
	// API. A throwaway directory is fine for a demo.
	root, err := os.MkdirTemp("", "multitenant")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	srv, err := hpcfail.NewRiskServer(hpcfail.ServerConfig{
		Dataset:    ds,
		Window:     24 * time.Hour,
		TenantRoot: root,
		AdminToken: "root-tok",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())

	ctx := context.Background()
	c, err := hpcfail.NewClient(hpcfail.ClientConfig{BaseURL: "http://" + ln.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}

	// Create a second, independently seeded dataset: its own store, risk
	// engine, correlation miner and WAL tree, isolated behind a token.
	admin := map[string]string{"X-Admin-Token": "root-tok"}
	body := []byte(`{"name":"bluegene","token":"bg-secret","seed":9,"scale":0.05}`)
	if res, err := c.DoResult(ctx, "POST", "/v1/datasets", body, admin); err != nil {
		log.Fatalf("create dataset: %v (status %d)", err, res.Status)
	}

	// Live ingest goes to whichever tenant the route names: the plain
	// client feeds the default dataset, a scoped handle feeds bluegene
	// with the same retry/idempotency machinery plus its auth token.
	bg := c.Dataset("bluegene", "bg-secret")
	if _, err := c.PostEvents(ctx, []hpcfail.ClientEvent{
		{System: ds.Systems[0].ID, Node: 0, Category: "HW", HW: "CPU"},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := bg.PostEvents(ctx, []hpcfail.ClientEvent{
		{System: 2, Node: 0, Category: "SW", SW: "OS"},
	}); err != nil {
		log.Fatal(err)
	}

	// Compare the two fleets in one pinned-snapshot query. Each side is
	// bit-identical to asking that tenant alone; the diff section ranks
	// rate and lift ratios by how far they sit from parity.
	res, err := c.DoResult(ctx, "GET", "/v1/compare/rates?datasets=default,bluegene&window=month", nil, admin)
	if err != nil {
		log.Fatalf("compare: %v (status %d)", err, res.Status)
	}
	var cmp struct {
		Diff []struct {
			Dataset      string  `json:"dataset"`
			Baseline     string  `json:"baseline"`
			OverallRatio float64 `json:"overall_ratio"`
			Categories   []struct {
				Category string  `json:"category"`
				Ratio    float64 `json:"ratio"`
			} `json:"categories"`
			Lift []struct {
				Anchor string  `json:"anchor"`
				Ratio  float64 `json:"ratio"`
			} `json:"lift"`
		} `json:"diff"`
	}
	if err := json.Unmarshal(res.Body, &cmp); err != nil {
		log.Fatal(err)
	}
	d := cmp.Diff[0]
	fmt.Printf("%s vs %s: %.2fx the overall failures per node-year\n\n",
		d.Dataset, d.Baseline, d.OverallRatio)
	fmt.Println("largest category-rate divergences:")
	for i, row := range d.Categories {
		if i == 3 {
			break
		}
		fmt.Printf("  %-6s %5.2fx\n", row.Category, row.Ratio)
	}
	fmt.Println("largest follow-up-lift divergences:")
	for i, row := range d.Lift {
		if i == 3 {
			break
		}
		fmt.Printf("  %-6s %5.2fx\n", row.Anchor, row.Ratio)
	}
}
