// Poweraudit: turn Section VII into an operator playbook. For every power
// problem type the tool measures which hardware components' failure rates
// rise the most in the following month and prints a ranked inspection
// checklist — the paper's "after such events one might want to thoroughly
// inspect these hardware components" made executable.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/hpcfail/hpcfail"
)

func main() {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 3, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	a := hpcfail.NewAnalyzer(ds)

	components := []hpcfail.HWComponent{
		hpcfail.PowerSupply, hpcfail.Memory, hpcfail.NodeBoard,
		hpcfail.Fan, hpcfail.CPU, hpcfail.MSCBoard, hpcfail.Midplane,
	}
	type finding struct {
		comp        hpcfail.HWComponent
		factor      float64
		prob        float64
		significant bool
	}

	anchors := []struct {
		name string
		pred hpcfail.Pred
	}{
		{"power outage", hpcfail.EnvPred(hpcfail.PowerOutage)},
		{"power spike", hpcfail.EnvPred(hpcfail.PowerSpike)},
		{"UPS failure", hpcfail.EnvPred(hpcfail.UPS)},
		{"power supply failure", hpcfail.HWPred(hpcfail.PowerSupply)},
		{"fan failure", hpcfail.HWPred(hpcfail.Fan)},
		{"chiller failure", hpcfail.EnvPred(hpcfail.Chillers)},
	}

	for _, anchor := range anchors {
		var findings []finding
		for _, comp := range components {
			r := a.CondProb(ds.Systems, anchor.pred, hpcfail.HWPred(comp), hpcfail.Month, hpcfail.ScopeNode)
			f := r.Factor()
			if f != f { // NaN: no anchors or no baseline
				continue
			}
			findings = append(findings, finding{
				comp:        comp,
				factor:      f,
				prob:        r.Conditional.P(),
				significant: r.Significant(0.05),
			})
		}
		sort.Slice(findings, func(i, j int) bool { return findings[i].factor > findings[j].factor })

		fmt.Printf("after a %s, inspect within the month:\n", anchor.name)
		printed := 0
		for _, f := range findings {
			if f.factor < 2 || !f.significant {
				continue
			}
			fmt.Printf("  %d. %-12s %5.1fx the usual monthly failure rate (P=%.1f%%)\n",
				printed+1, f.comp, f.factor, 100*f.prob)
			printed++
		}
		if printed == 0 {
			fmt.Println("  (no component shows a significant increase)")
		}
		fmt.Println()
	}

	fmt.Println("note: CPUs should stay off every list — the paper (and this data)")
	fmt.Println("finds CPU failures essentially immune to power and cooling problems.")
}
