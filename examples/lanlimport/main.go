// Lanlimport: run the toolkit on data in the public LANL release format.
//
// The example embeds a miniature failure table written in the release's
// column layout (in practice you would download the real tables from the
// LANL "Operational Data to Support and Enable Computer Science Research"
// page and point hpcimport, or this code, at them). It imports the table,
// derives system descriptors, and runs a conditional-probability analysis
// on the result — exactly the path a user with the real data would take.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/hpcfail/hpcfail"
)

// sample is a miniature failure table in the release's layout: a node 0
// with recurring trouble, a power outage with follow-up hardware failures,
// and scattered background failures.
const sample = `System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software
20,0,01/05/2004 08:10,01/05/2004 09:40,,,Memory Dimm,,,,
20,0,01/06/2004 11:00,,45,,,,Interconnect,,
20,0,01/12/2004 07:30,,,,,,,,"DST hang"
20,3,02/02/2004 14:00,02/02/2004 15:30,,Power Outage,,,,,
20,3,02/04/2004 09:00,,90,,Node Board,,,,
20,4,02/05/2004 16:20,,30,,Power Supply,,,,
20,7,03/10/2004 12:00,,,,CPU,,,,
20,9,04/21/2004 05:45,,,,,Operator error,,,
20,11,05/30/2004 18:30,,,,,,,Unresolvable,
20,5,06/15/2004 10:00,,,,"San Fan Assembly",,,,
20,3,06/16/2004 13:30,,60,,Memory Dimm,,,,
20,8,07/04/2004 20:15,,,,,,,,"Kernel panic"
`

func main() {
	ds, res, err := hpcfail.ImportLANL(strings.NewReader(sample), hpcfail.DefaultLANLMapping())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d failures (skipped %d rows) across %d systems\n\n",
		len(ds.Failures), len(res.Issues), len(ds.Systems))

	fmt.Println("root causes recovered from the release's free-text columns:")
	for _, f := range ds.Failures {
		fmt.Printf("  %s  node %2d  %-6s %s\n",
			f.Time.Format("2006-01-02 15:04"), f.Node, f.Category, f.SubtypeLabel())
	}

	// The full analysis machinery runs on the imported records.
	a := hpcfail.NewAnalyzer(ds)
	nc := a.FailuresPerNode(20)
	fmt.Printf("\nnode with most failures: node %d (%d records, system mean %.1f)\n",
		nc.MaxNode, nc.Counts[nc.MaxNode], nc.Mean)

	r := a.CondProb(ds.Systems, hpcfail.EnvPred(hpcfail.PowerOutage),
		hpcfail.CategoryPred(hpcfail.Hardware), hpcfail.Week, hpcfail.ScopeNode)
	fmt.Printf("P(hardware failure within a week of a power outage) = %.0f%%  (%d/%d anchors)\n",
		100*r.Conditional.P(), r.Conditional.Successes, r.Conditional.Trials)
	fmt.Println("\nwith the real multi-year tables, every figure of the paper regenerates:")
	fmt.Println("  hpcimport -in lanl_failures.csv -out data/ && hpcreport -data data/")
}
