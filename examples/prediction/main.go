// Prediction: train the toolkit's root-cause-aware follow-up-failure
// predictor on the first 70% of each system's trace, then evaluate it two
// ways on the held-out 30%:
//
//   - offline, with the analyzer's batch Evaluate;
//   - online, by streaming the held-out failures through the risk engine
//     (internal/risk) exactly as cmd/hpcserve would receive them, and
//     alerting from the engine's live scores.
//
// Both paths threshold the same trained statistic — P(follow-up within 24h
// | category) — so they raise identical alerts and achieve identical lift:
// the online serving path loses nothing over the batch analysis. The paper
// argues that effective prediction models must "consider the root-causes
// of failures"; the lift over the category-blind base rate quantifies
// exactly that.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hpcfail/hpcfail"
)

const (
	split     = 0.7
	threshold = 0.10
)

func main() {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 5, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	a := hpcfail.NewAnalyzer(ds)
	systems := ds.GroupSystems(hpcfail.Group1)

	predictor, err := a.TrainPredictor(systems, hpcfail.Day, split, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("trained P(follow-up within 24h | category):")
	for _, cat := range []hpcfail.Category{
		hpcfail.Environment, hpcfail.Hardware, hpcfail.Human,
		hpcfail.Network, hpcfail.Software, hpcfail.Undetermined,
	} {
		p := predictor.Trained[cat]
		marker := " "
		if p.Valid() && p.P() >= threshold {
			marker = "*" // this category raises alerts
		}
		fmt.Printf("  %s %-6s %6.1f%%  (%d anchors)\n", marker, cat, 100*p.P(), p.Trials)
	}

	offline, err := a.Evaluate(predictor, systems, split)
	if err != nil {
		log.Fatal(err)
	}

	// Online path: the same training data goes into a lift table (clipped
	// to the training split), and the held-out events are replayed through
	// the risk engine. The table is restricted to category-level entries so
	// the engine scores the predictor's exact statistic rather than its
	// component-refined variants.
	table, err := hpcfail.TrainLiftTable(ds, systems, hpcfail.Day, split)
	if err != nil {
		log.Fatal(err)
	}
	for k := range table.Entries {
		if k.HW != 0 {
			delete(table.Entries, k)
		}
	}
	engine, err := hpcfail.NewRiskEngineWith(hpcfail.RiskConfig{
		Table:   table,
		Systems: systems,
		Layouts: ds.Layouts,
	})
	if err != nil {
		log.Fatal(err)
	}

	online := replay(ds, systems, engine)

	fmt.Printf("\nevaluation on held-out %.0f%% (alert threshold %.0f%%):\n", 100*(1-split), 100*threshold)
	fmt.Printf("  %-22s %9s %9s\n", "", "offline", "online")
	fmt.Printf("  %-22s %9d %9d\n", "anchors evaluated:", offline.Total, online.Total)
	fmt.Printf("  %-22s %9d %9d\n", "alerts raised:", offline.Alerts, online.Alerts)
	fmt.Printf("  %-22s %9d %9d\n", "follow-ups caught:", offline.TP, online.TP)
	fmt.Printf("  %-22s %8.1f%% %8.1f%%\n", "precision:", 100*offline.Precision(), 100*online.Precision())
	fmt.Printf("  %-22s %8.1f%% %8.1f%%\n", "recall:", 100*offline.Recall(), 100*online.Recall())
	fmt.Printf("  %-22s %8.2fx %8.2fx\n", "lift over base rate:", offline.Lift(), online.Lift())
	if offline != online {
		log.Fatalf("online evaluation diverged from offline:\n  offline %+v\n  online  %+v", offline, online)
	}
	fmt.Println("  (identical: the online scoring path reproduces the batch analysis)")

	// The engine adds what the batch predictor cannot: scores that move in
	// real time. Watch one node's risk decay as its last failure ages out.
	last := engine.Snapshot().Active
	if len(last) > 0 {
		f := last[len(last)-1]
		fmt.Printf("\nlive decay of node %d/%d after its %s failure:\n", f.System, f.Node, f.Category)
		for _, age := range []time.Duration{0, 6 * time.Hour, 12 * time.Hour, 25 * time.Hour} {
			sc, err := engine.Score(f.System, f.Node, f.Time.Add(age))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  +%3dh  risk %5.1f%%  (base %.1f%%)\n", int(age.Hours()), 100*sc.Risk, 100*sc.Base)
		}
	}

	fmt.Println("\nthe lift comes from conditioning on the root cause: network and")
	fmt.Println("environment failures are far more predictive than average (Fig 1a).")
}

// replay streams each system's held-out failures through the engine in
// trace order and scores the failing node at the instant of each event,
// mirroring the analyzer's Evaluate anchor-by-anchor.
func replay(ds *hpcfail.Dataset, systems []hpcfail.SystemInfo, engine *hpcfail.RiskEngine) hpcfail.Evaluation {
	var ev hpcfail.Evaluation
	base := 0
	for _, s := range systems {
		cut := s.Period.Start.Add(time.Duration(split * float64(s.Period.Duration())))
		for _, f := range ds.Failures {
			if f.System != s.ID || f.Time.Before(cut) {
				continue
			}
			end := f.Time.Add(hpcfail.Day)
			if end.After(s.Period.End) {
				continue
			}
			if err := engine.Observe(f); err != nil {
				log.Fatal(err)
			}
			sc, err := engine.Score(s.ID, f.Node, f.Time)
			if err != nil {
				log.Fatal(err)
			}
			predicted := alerted(sc, f)
			actual := followUp(ds, f, end)
			ev.Total++
			if actual {
				base++
			}
			switch {
			case predicted && actual:
				ev.TP++
			case predicted && !actual:
				ev.FP++
			case !predicted && actual:
				ev.FN++
			}
		}
	}
	ev.Alerts = ev.TP + ev.FP
	if ev.Total > 0 {
		ev.BaseRate = float64(base) / float64(ev.Total)
	}
	return ev
}

// alerted finds the score contribution of the event just observed and
// applies the predictor's threshold to its conditional.
func alerted(sc hpcfail.RiskScore, f hpcfail.Failure) bool {
	for _, c := range sc.Contributions {
		if c.Age == 0 && c.Event.Node == f.Node && c.Event.Category == f.Category && c.Scope == hpcfail.ScopeNode {
			return c.Conditional >= threshold
		}
	}
	return false
}

// followUp reports whether the same node fails again within the horizon,
// using the same open-start window as the analyzer's Evaluate.
func followUp(ds *hpcfail.Dataset, f hpcfail.Failure, end time.Time) bool {
	for _, g := range ds.Failures {
		if g.System == f.System && g.Node == f.Node && g.Time.After(f.Time) && g.Time.Before(end) {
			return true
		}
	}
	return false
}
