// Prediction: train the toolkit's root-cause-aware follow-up-failure
// predictor on the first 70% of each system's trace and evaluate its lift
// on the held-out 30%.
//
// After any failure, the predictor alerts when the failure's category has a
// trained follow-up probability above the threshold; the alert is correct
// if the same node fails again within 24 hours. The paper argues that
// effective prediction models must "consider the root-causes of failures" —
// the lift over the category-blind base rate quantifies exactly that.
package main

import (
	"fmt"
	"log"

	"github.com/hpcfail/hpcfail"
)

func main() {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 5, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	a := hpcfail.NewAnalyzer(ds)
	systems := ds.GroupSystems(hpcfail.Group1)

	const (
		split     = 0.7
		threshold = 0.10
	)
	predictor, err := a.TrainPredictor(systems, hpcfail.Day, split, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("trained P(follow-up within 24h | category):")
	for _, cat := range []hpcfail.Category{
		hpcfail.Environment, hpcfail.Hardware, hpcfail.Human,
		hpcfail.Network, hpcfail.Software, hpcfail.Undetermined,
	} {
		p := predictor.Trained[cat]
		marker := " "
		if p.Valid() && p.P() >= threshold {
			marker = "*" // this category raises alerts
		}
		fmt.Printf("  %s %-6s %6.1f%%  (%d anchors)\n", marker, cat, 100*p.P(), p.Trials)
	}

	ev, err := a.Evaluate(predictor, systems, split)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevaluation on held-out %.0f%% (alert threshold %.0f%%):\n", 100*(1-split), 100*threshold)
	fmt.Printf("  anchors evaluated:   %d\n", ev.Total)
	fmt.Printf("  alerts raised:       %d\n", ev.Alerts)
	fmt.Printf("  follow-ups caught:   %d (missed %d)\n", ev.TP, ev.FN)
	fmt.Printf("  precision:           %5.1f%%  (base follow-up rate %.1f%%)\n",
		100*ev.Precision(), 100*ev.BaseRate)
	fmt.Printf("  recall:              %5.1f%%\n", 100*ev.Recall())
	fmt.Printf("  lift over base rate: %.2fx\n", ev.Lift())
	fmt.Println("\nthe lift comes from conditioning on the root cause: network and")
	fmt.Println("environment failures are far more predictive than average (Fig 1a).")
}
