// Quickstart: generate a small synthetic LANL-style dataset and ask the
// toolkit's core question — how much more likely is a node to fail right
// after it already failed?
package main

import (
	"fmt"
	"log"

	"github.com/hpcfail/hpcfail"
)

func main() {
	// Generate a quarter-scale dataset: ten systems, years of operation,
	// node outages with root causes, job logs, temperatures, maintenance
	// and a neutron-monitor series. Seeded, so runs are reproducible.
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 1, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d systems, %d failures, %d jobs\n\n",
		len(ds.Systems), len(ds.Failures), len(ds.Jobs))

	a := hpcfail.NewAnalyzer(ds)
	g1 := ds.GroupSystems(hpcfail.Group1)

	// The headline result of the paper's Section III: failures cluster.
	day := a.CondProb(g1, nil, nil, hpcfail.Day, hpcfail.ScopeNode)
	week := a.CondProb(g1, nil, nil, hpcfail.Week, hpcfail.ScopeNode)
	fmt.Printf("P(node fails on a random day)        = %6.2f%%\n", 100*day.Baseline.P())
	fmt.Printf("P(node fails within 24h of failing)  = %6.2f%%  (%.0fx, p=%.1g)\n",
		100*day.Conditional.P(), day.Factor(), day.Test.P)
	fmt.Printf("P(node fails in a random week)       = %6.2f%%\n", 100*week.Baseline.P())
	fmt.Printf("P(node fails within a week of failing)= %5.2f%%  (%.0fx)\n\n",
		100*week.Conditional.P(), week.Factor())

	// Which failure types are the strongest omens?
	fmt.Println("follow-up probability within a week, by prior failure type:")
	for _, fu := range a.FollowUpByType(g1, hpcfail.Week, hpcfail.ScopeNode) {
		fmt.Printf("  after %-10s %6.1f%%  (%5.1fx over baseline)\n",
			fu.Label, 100*fu.Conditional.P(), fu.Factor())
	}
}
