// Checkpointing: use the paper's correlation insight — a node that just
// failed is 5-20X more likely to fail again — to drive an adaptive
// checkpoint policy, and compare the work lost against fixed-interval
// baselines on the same failure trace.
//
// The replay engine lives in the library (hpcfail.ReplayCheckpoints); this
// example sizes the fixed baseline with Young's formula from the measured
// MTBF, then shows that spending extra checkpoints inside the post-failure
// high-risk window (Section III) beats it.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hpcfail/hpcfail"
)

const checkpointCost = 10 * time.Minute

func main() {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 11, Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	a := hpcfail.NewAnalyzer(ds)
	systems := ds.GroupSystems(hpcfail.Group1)

	// Size the classical baseline from the data: Young's optimum for the
	// measured per-node MTBF.
	mtbf := time.Duration(a.MTBFHours(systems) * float64(time.Hour))
	young := hpcfail.YoungInterval(checkpointCost, mtbf).Round(time.Hour)
	fmt.Printf("measured node MTBF: %s -> Young's optimum interval: %s\n\n",
		mtbf.Round(time.Hour), young)

	failureTimes := func(system, node int) []time.Time {
		fs := a.Index.NodeFailures(system, node)
		out := make([]time.Time, len(fs))
		for i, f := range fs {
			out[i] = f.Time
		}
		return out
	}

	policies := []hpcfail.CheckpointPolicy{
		hpcfail.FixedCheckpoint{Every: young},
		hpcfail.FixedCheckpoint{Every: young / 4},
		hpcfail.RiskAwareCheckpoint{Base: young, Risky: young / 6, Window: 72 * time.Hour},
	}
	results, err := hpcfail.CompareCheckpointPolicies(systems, failureTimes, checkpointCost, policies...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %14s %14s %14s\n", "policy", "lost work", "ckpt overhead", "total cost")
	for i, p := range policies {
		r := results[i]
		fmt.Printf("%-28s %14s %14s %14s\n", p.Name(),
			r.Lost.Round(time.Hour), r.Overhead.Round(time.Hour), r.Total().Round(time.Hour))
	}

	base, adaptive := results[0], results[2]
	fmt.Printf("\nrisk-aware policy saves %.1f%% of total cost over Young-optimal fixed\n",
		100*(1-float64(adaptive.Total())/float64(base.Total())))
	fmt.Println("\nwhy it works: the days after a failure carry a large share of all")
	fmt.Println("failures (Section III), so spending extra checkpoints there buys the")
	fmt.Println("most protection per unit of overhead — blindly checkpointing 4x more")
	fmt.Println("often (second row) mostly buys overhead instead.")
}
