package hpcfail_test

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hpcfail/hpcfail"
)

// TestPublicAPISurface exercises the facade end to end: generate, save,
// load, analyze, and run an experiment, all through the exported API.
func TestPublicAPISurface(t *testing.T) {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 21, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "ds")
	if err := hpcfail.SaveDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := hpcfail.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Failures) != len(ds.Failures) {
		t.Fatalf("roundtrip lost failures: %d vs %d", len(loaded.Failures), len(ds.Failures))
	}

	a := hpcfail.NewAnalyzer(loaded)
	g1 := loaded.GroupSystems(hpcfail.Group1)
	week := a.CondProb(g1, nil, nil, hpcfail.Week, hpcfail.ScopeNode)
	if !week.Conditional.Valid() || !week.Baseline.Valid() {
		t.Fatal("conditional probability estimates should be populated")
	}
	if week.Conditional.P() <= week.Baseline.P() {
		t.Errorf("clustering expected: conditional %.3f <= baseline %.3f",
			week.Conditional.P(), week.Baseline.P())
	}

	// Predicates compose through the facade.
	mem := a.CondProb(g1, hpcfail.HWPred(hpcfail.Memory), hpcfail.HWPred(hpcfail.Memory), hpcfail.Week, hpcfail.ScopeNode)
	if mem.Conditional.Trials == 0 {
		t.Error("memory anchors should exist")
	}

	suite := hpcfail.NewExperimentSuite(loaded)
	res, err := suite.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("fig9 failed: %v", res.Err)
	}
	if res.Figure == "" {
		t.Error("experiment should render a figure")
	}

	ids := hpcfail.ExperimentIDs()
	if len(ids) < 20 {
		t.Errorf("expected the full experiment index, got %d", len(ids))
	}
	if hpcfail.WindowName(hpcfail.Month) != "month" {
		t.Error("WindowName re-export broken")
	}
}

// TestCheckpointFacade exercises the checkpoint re-exports.
func TestCheckpointFacade(t *testing.T) {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 31, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	a := hpcfail.NewAnalyzer(ds)
	systems := ds.GroupSystems(hpcfail.Group1)
	mtbf := time.Duration(a.MTBFHours(systems) * float64(time.Hour))
	young := hpcfail.YoungInterval(10*time.Minute, mtbf)
	if young <= 0 {
		t.Fatal("Young interval should be positive")
	}
	failureTimes := func(system, node int) []time.Time {
		fs := a.Index.NodeFailures(system, node)
		out := make([]time.Time, len(fs))
		for i, f := range fs {
			out[i] = f.Time
		}
		return out
	}
	results, err := hpcfail.CompareCheckpointPolicies(systems, failureTimes, 10*time.Minute,
		hpcfail.FixedCheckpoint{Every: young},
		hpcfail.RiskAwareCheckpoint{Base: young, Risky: young / 6, Window: 72 * time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Checkpoints == 0 {
		t.Fatalf("results: %+v", results)
	}
	if results[1].Lost >= results[0].Lost {
		t.Errorf("risk-aware should lose less work on a clustered trace: %v vs %v",
			results[1].Lost, results[0].Lost)
	}
}

// TestImportLANLFacade exercises the importer re-exports.
func TestImportLANLFacade(t *testing.T) {
	csv := "System,nodenumz,Prob Started,Prob Fixed,Down Time,Facilities,Hardware,Human Error,Network,Undetermined,Software\n" +
		"20,0,01/05/2004 08:10,,,,CPU,,,,\n" +
		"20,1,01/06/2004 08:10,,,Power Outage,,,,,\n"
	ds, res, err := hpcfail.ImportLANL(strings.NewReader(csv), hpcfail.DefaultLANLMapping())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failures) != 2 || len(res.Issues) != 0 {
		t.Fatalf("import: %d failures, %d issues", len(ds.Failures), len(res.Issues))
	}
	if ds.Failures[1].Env != hpcfail.PowerOutage {
		t.Error("outage subtype not recovered")
	}
}

// TestServingFacade exercises the serving layer through the exported API:
// lift table, risk engine, and the HTTP handler.
func TestServingFacade(t *testing.T) {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{Seed: 23, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	table, err := hpcfail.BuildLiftTable(ds, ds.Systems, hpcfail.Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Keys()) == 0 {
		t.Fatal("empty lift table")
	}

	engine, err := hpcfail.NewRiskEngine(ds, hpcfail.Day)
	if err != nil {
		t.Fatal(err)
	}
	sys := ds.Systems[0]
	now := sys.Period.End.Add(time.Hour)
	if err := engine.Observe(hpcfail.Failure{
		System: sys.ID, Node: 0, Time: now,
		Category: hpcfail.Hardware, HW: hpcfail.CPU,
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := engine.Score(sys.ID, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Risk <= sc.Base {
		t.Errorf("risk %v not above base %v after a hardware event", sc.Risk, sc.Base)
	}

	srv, err := hpcfail.NewRiskServer(hpcfail.ServerConfig{Dataset: ds, Window: hpcfail.Day})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz = %d", rec.Code)
	}
}

// TestGenerateOptionsAblation checks the ablation switches through the
// facade.
func TestGenerateOptionsAblation(t *testing.T) {
	ds, err := hpcfail.Generate(hpcfail.GenerateOptions{
		Seed: 22, Scale: 0.1,
		DisableTriggering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Failures) == 0 {
		t.Error("ablated dataset should still have failures")
	}
}
