#!/bin/sh
# Chaos gate: the crash-recovery and overload-resilience tests, under the
# race detector. These are the tests that SIGKILL a live server, tear WAL
# tails, kill shards mid-query to force standby failover, flood admission
# queues, and shut down under fault injection — the ones most likely to
# catch ordering bugs that a polite test run never trips. Shared by
# verify.sh and the CI chaos job so the two can never drift. CHAOS_COUNT
# reruns the suite (flake hunting); defaults to 1.
set -eu

count="${CHAOS_COUNT:-1}"

go test -race -count="$count" \
    -run 'TestKillAndRecover|TestShedding|TestConcurrencyNeverExceeded|TestBreaker|TestShutdownJoins|TestServerJournalRecovery|TestChaos|TestLiveCondProb|TestConcurrentReadersDuringAppend|TestRebuildFallbackUnderConcurrentSnapshotReaders|TestKillOneShardPartialThenPromotionIdentity|TestSupervisorAutoFailover|TestCondProbScatterPartialAndMergeIdentity|TestCorrelationsPartialOnShardKill|TestShardChaos|TestStandby|TestTwoTenant|TestTenantReadOnlySiblingWritable' \
    ./cmd/hpcserve/ ./internal/server/ ./internal/faultinject/ ./internal/store/ ./internal/risk/
