#!/bin/sh
# Bench regression gate: run the hpcbench kernel suite in quick mode and
# compare against the committed baseline (BENCH_results.json). Fails when
# any kernel bench is more than TOLERANCE slower than the baseline, or any
# indexed kernel drops below MIN_SPEEDUP over its naive reference.
# Shared by verify.sh and CI.
set -eu

dir=$(dirname "$0")
repo=$(cd "$dir/.." && pwd)
tolerance="${TOLERANCE:-0.25}"
min_speedup="${MIN_SPEEDUP:-1.5}"

out=$(mktemp)
trap 'rm -f "$out"' EXIT

go run "$repo/cmd/hpcbench" -quick \
    -baseline "$repo/BENCH_results.json" \
    -tolerance "$tolerance" \
    -min-speedup "$min_speedup" \
    -out "$out"
