#!/bin/sh
# Crash-consistency gate: the storage-fault torture battery, under the race
# detector. Enumerates every crash point of the WAL-append + snapshot +
# compaction pipeline over the in-memory fault filesystem (tear and bit-flip
# variants included), plus the fsyncgate, ENOSPC-rollback, and read-only-
# degradation tests. Shared by verify.sh and the CI crashgate job so the two
# can never drift. CRASHGATE_DEEP=1 widens the sweep (~3x the crash points)
# for the nightly run.
set -eu

deep="${CRASHGATE_DEEP:-}"

CRASHGATE_DEEP="$deep" go test -race \
    -run 'TestCrashConsistencySweep|TestFsyncGatePoisonsLog|TestAppendENOSPCRollsBackAndRecovers|TestAppendShortWriteRollsBack|TestRotateENOSPCReattachesTail|TestLogOverMemFSEndToEnd|TestMemFS|TestInject|TestDiskFull|TestKillAndRecoverDiskFull|TestReadOnly' \
    ./internal/iofault/ ./internal/wal/ ./internal/risk/ ./internal/server/ ./internal/client/ ./cmd/hpcserve/
