#!/bin/sh
# Fuzz smoke: run every target listed in scripts/fuzz_targets.txt for a
# short burst. The ingestion decoders must survive arbitrary bytes and the
# server's query parser arbitrary query strings. FUZZTIME overrides the
# per-target budget (CI and release gates can use 30s or more).
set -eu

dir=$(dirname "$0")
fuzztime="${FUZZTIME:-5s}"

while read -r fn pkg; do
    case "$fn" in ''|'#'*) continue ;; esac
    echo "fuzz smoke: $fn $pkg ($fuzztime)"
    go test -fuzz="^$fn\$" -fuzztime="$fuzztime" -run='^$' "$pkg"
done < "$dir/fuzz_targets.txt"
