#!/bin/sh
# Replay SLO gate: boot an in-process hpcserve, replay the quick catalog's
# trace tail at high acceleration as open-loop load, and compare the
# coordinated-omission-corrected per-route latencies against the committed
# baseline (REPLAY_baseline.json). Fails when any route's p99 regresses
# more than REPLAY_TOLERANCE (and REPLAY_P99_SLACK absolute — generous, so
# shared-runner noise can't flake the gate), when any route's error rate
# increases at all, or when the run cannot sustain REPLAY_MIN_ACCEL.
# Shared by verify.sh and CI.
#
# Refresh the baseline after an intentional perf change with:
#   go run ./cmd/hpcreplay -quick -serve -seed 1 -out REPLAY_baseline.json
set -eu

dir=$(dirname "$0")
repo=$(cd "$dir/.." && pwd)
tolerance="${REPLAY_TOLERANCE:-0.25}"
p99_slack="${REPLAY_P99_SLACK:-250ms}"
min_accel="${REPLAY_MIN_ACCEL:-1000}"

out="${REPLAY_OUT:-$(mktemp)}"
[ -n "${REPLAY_OUT:-}" ] || trap 'rm -f "$out"' EXIT

go run "$repo/cmd/hpcreplay" -quick -serve -seed 1 \
    -baseline "$repo/REPLAY_baseline.json" \
    -tolerance "$tolerance" \
    -p99-slack "$p99_slack" \
    -min-accel "$min_accel" \
    -out "$out"
