#!/bin/sh
# Formatting gate: fail (non-zero exit) when any tracked Go file is not
# gofmt-clean, listing the offenders. Shared by verify.sh and CI.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi
