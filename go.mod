module github.com/hpcfail/hpcfail

go 1.22
